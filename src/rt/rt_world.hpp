// Real-time engine: one OS thread per protocol stack.
//
// The same protocol modules that run deterministically in dpu::sim run here
// under real concurrency (DESIGN.md §2): each stack owns a thread, an event
// queue and a timer heap; packets travel either through lock-protected
// in-process queues or through real POSIX UDP sockets on the loopback
// device (the paper's transport).
//
// Concurrency contract (Core Guidelines CP.2/CP.3): all interaction with a
// stack's modules happens on that stack's thread.  External drivers use
// post_to()/call_on() to marshal closures onto it; cross-thread state
// (queues, the crash flag, counters) is mutex- or atomic-protected, and
// protocol code itself stays lock-free exactly as in the simulator.
#pragma once

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/stack.hpp"
#include "core/trace.hpp"
#include "runtime/host.hpp"

namespace dpu {

enum class RtTransport {
  kInproc,      ///< lock-protected queues between threads
  kUdpSockets,  ///< real UDP datagrams over 127.0.0.1
};

struct RtConfig {
  std::size_t num_stacks = 3;
  std::uint64_t seed = 1;
  RtTransport transport = RtTransport::kInproc;
  /// First UDP port for transport kUdpSockets (stack i uses base+i).
  std::uint16_t udp_base_port = 37900;
  /// In-proc transport fault injection (0 = reliable).
  double drop_probability = 0.0;
};

class RtWorld {
 public:
  explicit RtWorld(RtConfig config, const ProtocolLibrary* library = nullptr,
                   TraceSink* trace = nullptr);
  ~RtWorld();

  RtWorld(const RtWorld&) = delete;
  RtWorld& operator=(const RtWorld&) = delete;

  [[nodiscard]] std::size_t size() const { return hosts_.size(); }
  [[nodiscard]] Stack& stack(NodeId node) { return *stacks_[node]; }

  /// Starts every stack thread.  Composition (module creation) must happen
  /// either before start() or via post_to()/call_on() afterwards.
  void start();

  /// Stops and joins all threads.  Idempotent; called by the destructor.
  void stop();

  /// Schedules `fn` on `node`'s thread (fire and forget).
  void post_to(NodeId node, std::function<void()> fn);

  /// Runs `fn` on `node`'s thread and waits for completion.
  void call_on(NodeId node, std::function<void()> fn);

  /// Crash-stop fault injection: the stack's thread stops processing and
  /// packets to it are dropped.
  void crash(NodeId node);
  [[nodiscard]] bool crashed(NodeId node) const;
  [[nodiscard]] std::set<NodeId> crashed_set() const;

 private:
  class RtHost;
  friend class RtHost;

  void route_packet(NodeId src, NodeId dst, Payload data);

  RtConfig config_;
  std::vector<std::unique_ptr<RtHost>> hosts_;
  std::vector<std::unique_ptr<Stack>> stacks_;
  bool started_ = false;
};

}  // namespace dpu
