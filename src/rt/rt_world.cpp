#include "rt/rt_world.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>

#include "util/log.hpp"

namespace dpu {

namespace {
using SteadyClock = std::chrono::steady_clock;
}  // namespace

// ---------------------------------------------------------------------------
// RtHost — HostEnv implementation: one thread, one event queue, one timer
// heap, optionally one UDP socket.
// ---------------------------------------------------------------------------

class RtWorld::RtHost final : public HostEnv {
 public:
  RtHost(RtWorld& world, NodeId node, std::uint64_t seed)
      : world_(&world),
        node_(node),
        rng_(Rng::substream(seed, node)),
        epoch_(SteadyClock::now()) {}

  ~RtHost() override { stop_and_join(); }

  // ---- HostEnv --------------------------------------------------------------

  [[nodiscard]] NodeId node_id() const override { return node_; }
  [[nodiscard]] std::size_t world_size() const override {
    return world_->hosts_.size();
  }

  [[nodiscard]] TimePoint now() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               SteadyClock::now() - epoch_)
        .count();
  }

  TimerId set_timer(Duration after, std::function<void()> cb) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    const TimerId id = ++next_timer_id_;
    timers_.emplace(now() + std::max<Duration>(after, 0),
                    TimerEntry{id, std::move(cb)});
    live_timers_.insert(id);
    cv_.notify_all();
    return id;
  }

  void cancel_timer(TimerId id) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    live_timers_.erase(id);
  }

  void send_packet(NodeId dst, Payload data) override {
    world_->route_packet(node_, dst, std::move(data));
  }

  void post(std::function<void()> fn) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(fn));
    cv_.notify_all();
  }

  [[nodiscard]] Rng& rng() override { return rng_; }

  void charge(Duration /*cost*/) override {
    // Real cycles are already spent; nothing to model.
  }

  [[nodiscard]] bool crashed() const override {
    return crashed_.load(std::memory_order_relaxed);
  }

  void set_packet_handler(
      std::function<void(NodeId, const Payload&)> handler) override {
    // Called from this stack's thread (module start/stop); handler is only
    // read from this thread as well.
    packet_handler_ = std::move(handler);
  }

  // ---- Engine side -----------------------------------------------------------

  void set_epoch(SteadyClock::time_point epoch) { epoch_ = epoch; }

  // The Payload's refcount is atomic, so handing it from the sender's
  // thread to this stack's thread needs no extra synchronization beyond the
  // queue mutex post() already takes.
  void enqueue_packet(NodeId src, Payload data) {
    if (crashed()) return;
    post([this, src, payload = std::move(data)]() {
      if (packet_handler_) packet_handler_(src, payload);
    });
  }

  void open_socket(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd_ < 0) throw std::runtime_error("rt: socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      throw std::runtime_error("rt: bind() failed on port " +
                               std::to_string(port));
    }
    // Receive timeout so the receiver thread can observe shutdown.
    timeval tv{0, 50'000};  // 50ms
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  void socket_send(std::uint16_t dst_port, const Bytes& data) const {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(dst_port);
    ::sendto(fd_, data.data(), data.size(), 0,
             reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  }

  void start_threads(bool with_receiver, std::uint16_t base_port) {
    running_.store(true);
    loop_thread_ = std::thread([this]() { run_loop(); });
    if (with_receiver) {
      receiver_thread_ = std::thread([this, base_port]() {
        run_receiver(base_port);
      });
    }
  }

  void stop_and_join() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!running_.exchange(false)) return;
      cv_.notify_all();
    }
    if (loop_thread_.joinable()) loop_thread_.join();
    if (receiver_thread_.joinable()) receiver_thread_.join();
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void mark_crashed() {
    crashed_.store(true, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(mutex_);
    cv_.notify_all();
  }

 private:
  struct TimerEntry {
    TimerId id;
    std::function<void()> cb;
  };

  void run_loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (running_.load() && !crashed()) {
      // Fire due timers.
      const TimePoint t = now();
      while (!timers_.empty() && timers_.begin()->first <= t) {
        auto node = timers_.extract(timers_.begin());
        TimerEntry& entry = node.mapped();
        const bool live = live_timers_.erase(entry.id) > 0;
        if (!live) continue;
        lock.unlock();
        entry.cb();
        lock.lock();
      }
      // Drain posted events.
      while (!queue_.empty()) {
        auto fn = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();
        fn();
        lock.lock();
        if (!running_.load() || crashed()) return;
      }
      if (!running_.load() || crashed()) return;
      // Sleep until the next timer or a new event.
      if (timers_.empty()) {
        cv_.wait(lock);
      } else {
        const Duration until = timers_.begin()->first - now();
        if (until > 0) {
          cv_.wait_for(lock, std::chrono::nanoseconds(until));
        }
      }
    }
  }

  void run_receiver(std::uint16_t /*base_port*/) {
    std::vector<std::uint8_t> buf(65536);
    while (running_.load() && !crashed()) {
      sockaddr_in from{};
      socklen_t from_len = sizeof(from);
      const ssize_t n =
          ::recvfrom(fd_, buf.data(), buf.size(), 0,
                     reinterpret_cast<sockaddr*>(&from), &from_len);
      if (n < 0) continue;  // timeout; recheck running flag
      if (n < 4) continue;  // below the src-id header
      // First 4 bytes: source node id (see RtWorld::route_packet).
      const NodeId src = (static_cast<NodeId>(buf[0]) << 24) |
                         (static_cast<NodeId>(buf[1]) << 16) |
                         (static_cast<NodeId>(buf[2]) << 8) |
                         static_cast<NodeId>(buf[3]);
      const std::span<const std::uint8_t> body(
          buf.data() + 4, static_cast<std::size_t>(n) - 4);
      enqueue_packet(src, Payload(body));
    }
  }

  RtWorld* world_;
  NodeId node_;
  Rng rng_;
  SteadyClock::time_point epoch_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::multimap<TimePoint, TimerEntry> timers_;
  std::unordered_set<TimerId> live_timers_;
  TimerId next_timer_id_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> crashed_{false};
  std::thread loop_thread_;
  std::thread receiver_thread_;
  std::function<void(NodeId, const Payload&)> packet_handler_;
  int fd_ = -1;
};

// ---------------------------------------------------------------------------
// RtWorld
// ---------------------------------------------------------------------------

RtWorld::RtWorld(RtConfig config, const ProtocolLibrary* library,
                 TraceSink* trace)
    : config_(config) {
  const auto epoch = SteadyClock::now();
  for (NodeId i = 0; i < config_.num_stacks; ++i) {
    hosts_.push_back(std::make_unique<RtHost>(*this, i, config_.seed));
    hosts_.back()->set_epoch(epoch);
    stacks_.push_back(std::make_unique<Stack>(*hosts_.back(), library, trace));
  }
  if (config_.transport == RtTransport::kUdpSockets) {
    for (NodeId i = 0; i < config_.num_stacks; ++i) {
      hosts_[i]->open_socket(
          static_cast<std::uint16_t>(config_.udp_base_port + i));
    }
  }
}

RtWorld::~RtWorld() { stop(); }

void RtWorld::start() {
  if (started_) return;
  started_ = true;
  const bool with_receiver = config_.transport == RtTransport::kUdpSockets;
  for (auto& host : hosts_) {
    host->start_threads(with_receiver, config_.udp_base_port);
  }
}

void RtWorld::stop() {
  for (auto& host : hosts_) host->stop_and_join();
  started_ = false;
}

void RtWorld::post_to(NodeId node, std::function<void()> fn) {
  hosts_[node]->post(std::move(fn));
}

void RtWorld::call_on(NodeId node, std::function<void()> fn) {
  std::promise<void> done;
  auto fut = done.get_future();
  hosts_[node]->post([&fn, &done]() {
    fn();
    done.set_value();
  });
  fut.wait();
}

void RtWorld::crash(NodeId node) {
  hosts_[node]->mark_crashed();
  stacks_[node]->trace(TraceKind::kStackCrashed, "", "");
}

bool RtWorld::crashed(NodeId node) const {
  return hosts_[node]->crashed();
}

std::set<NodeId> RtWorld::crashed_set() const {
  std::set<NodeId> out;
  for (NodeId i = 0; i < hosts_.size(); ++i) {
    if (hosts_[i]->crashed()) out.insert(i);
  }
  return out;
}

void RtWorld::route_packet(NodeId src, NodeId dst, Payload data) {
  if (dst >= hosts_.size()) return;
  if (config_.transport == RtTransport::kUdpSockets) {
    // Prefix the datagram with the source node id (real sockets do not know
    // our logical ids).
    Bytes framed;
    framed.reserve(data.size() + 4);
    framed.push_back(static_cast<std::uint8_t>(src >> 24));
    framed.push_back(static_cast<std::uint8_t>(src >> 16));
    framed.push_back(static_cast<std::uint8_t>(src >> 8));
    framed.push_back(static_cast<std::uint8_t>(src));
    framed.insert(framed.end(), data.span().begin(), data.span().end());
    hosts_[src]->socket_send(
        static_cast<std::uint16_t>(config_.udp_base_port + dst), framed);
    return;
  }
  // In-proc transport with optional loss injection.
  if (config_.drop_probability > 0.0) {
    // Drop decisions need their own synchronized stream: many sender
    // threads route concurrently.
    static thread_local Rng drop_rng(0xD0D0'CAFE ^ config_.seed);
    if (drop_rng.chance(config_.drop_probability)) return;
  }
  hosts_[dst]->enqueue_packet(src, std::move(data));
}

}  // namespace dpu
