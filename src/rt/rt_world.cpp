#include "rt/rt_world.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <future>
#include <utility>

#include "util/log.hpp"
#include "util/rng.hpp"

namespace dpu {

namespace {
using SteadyClock = std::chrono::steady_clock;
}  // namespace

// ---------------------------------------------------------------------------
// RtHost — HostEnv implementation: one thread, one event queue, one timer
// heap, optionally one UDP socket.
// ---------------------------------------------------------------------------

class RtWorld::RtHost final : public HostEnv {
 public:
  RtHost(RtWorld& world, NodeId node, std::uint64_t seed)
      : world_(&world),
        node_(node),
        seed_(seed),
        rng_(Rng::substream(seed, node)),
        epoch_(SteadyClock::now()) {}

  ~RtHost() override { stop_and_join(); }

  // ---- HostEnv --------------------------------------------------------------

  [[nodiscard]] NodeId node_id() const override { return node_; }
  [[nodiscard]] std::size_t world_size() const override {
    return world_->hosts_.size();
  }

  [[nodiscard]] TimePoint now() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               SteadyClock::now() - epoch_)
        .count();
  }

  TimerId set_timer(Duration after, std::function<void()> cb) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    const TimerId id = ++next_timer_id_;
    timers_.emplace(now() + std::max<Duration>(after, 0),
                    TimerEntry{id, std::move(cb)});
    live_timers_.insert(id);
    cv_.notify_all();
    return id;
  }

  void cancel_timer(TimerId id) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    live_timers_.erase(id);
  }

  void send_packet(NodeId dst, Payload data) override {
    world_->route_packet(node_, dst, std::move(data));
  }

  void post(std::function<void()> fn) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(fn));
    cv_.notify_all();
  }

  [[nodiscard]] Rng& rng() override { return rng_; }

  void charge(Duration /*cost*/) override {
    // Real cycles are already spent; nothing to model.
  }

  [[nodiscard]] bool crashed() const override {
    return crashed_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint32_t incarnation() const override {
    return incarnation_.load(std::memory_order_relaxed);
  }

  void set_packet_handler(
      std::function<void(NodeId, const Payload&)> handler) override {
    // Called from this stack's thread (module start/stop); handler is only
    // read from this thread as well.
    packet_handler_ = std::move(handler);
  }

  // ---- Engine side -----------------------------------------------------------

  void set_epoch(SteadyClock::time_point epoch) { epoch_ = epoch; }

  // The Payload's refcount is atomic, so handing it from the sender's
  // thread to this stack's thread needs no extra synchronization beyond the
  // queue mutex post() already takes.
  void enqueue_packet(NodeId src, Payload data) {
    if (crashed()) return;
    post([this, src, payload = std::move(data)]() {
      if (packet_handler_) packet_handler_(src, payload);
    });
  }

  void open_socket(std::uint16_t port, bool any_addr = false) {
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd_ < 0) throw std::runtime_error("rt: socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(any_addr ? INADDR_ANY : INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      throw std::runtime_error("rt: bind() failed on port " +
                               std::to_string(port));
    }
    // Receive timeout so the receiver thread can observe shutdown.
    timeval tv{0, 50'000};  // 50ms
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  /// Puts one datagram on the wire.  While the stack threads run, the
  /// datagram is staged on the host's tx queue and flushed — together with
  /// everything else the current event-loop iteration produced — by one
  /// sendmmsg() call; before start()/after stop() it goes out inline.
  void socket_send(const sockaddr_in& dst, const Bytes& data) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (running_.load()) {
        tx_queue_.push_back(TxDatagram{dst, data});
        cv_.notify_all();  // wake the loop thread to flush
        return;
      }
    }
    send_now(dst, data);
  }

  void start_threads(bool with_receiver, std::uint16_t base_port) {
    running_.store(true);
    loop_thread_ = std::thread([this]() { run_loop(); });
    if (with_receiver) {
      receiver_thread_ = std::thread([this, base_port]() {
        run_receiver(base_port);
      });
    }
  }

  void stop_and_join() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!running_.exchange(false)) return;
      cv_.notify_all();
    }
    if (loop_thread_.joinable()) loop_thread_.join();
    if (receiver_thread_.joinable()) receiver_thread_.join();
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void mark_crashed() {
    crashed_.store(true, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(mutex_);
    cv_.notify_all();
  }

  /// Crash-recovery reset.  Callable only with the stack's threads joined
  /// (stop_and_join) and its Stack destroyed: clears everything of the old
  /// incarnation, bumps the incarnation counter and reseeds the RNG on an
  /// incarnation substream.  The host object itself survives — senders keep
  /// routing through stable host pointers, so route_packet needs no lock
  /// around the host table.
  void reset_for_recovery(std::uint32_t incarnation) {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.clear();
    tx_queue_.clear();
    timers_.clear();
    live_timers_.clear();
    packet_handler_ = nullptr;
    incarnation_.store(incarnation, std::memory_order_relaxed);
    rng_ = Rng::substream(seed_,
                          incarnation_rng_substream(node_, incarnation));
    crashed_.store(false, std::memory_order_relaxed);
  }

  /// Agent-mode boot stamp: a respawned process starts life at the
  /// incarnation the supervisor assigned, with the same RNG substream a
  /// same-numbered in-process recovery would use.  Call before start.
  void set_initial_incarnation(std::uint32_t incarnation) {
    incarnation_.store(incarnation, std::memory_order_relaxed);
    if (incarnation > 0) {
      rng_ = Rng::substream(seed_,
                            incarnation_rng_substream(node_, incarnation));
    }
  }

 private:
  struct TimerEntry {
    TimerId id;
    std::function<void()> cb;
  };

  struct TxDatagram {
    sockaddr_in addr;
    Bytes data;
  };

  void send_now(const sockaddr_in& addr, const Bytes& data) {
    ::sendto(fd_, data.data(), data.size(), 0,
             reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    world_->note_socket_tx(1, 1);
  }

  /// Drains the staged tx queue with as few syscalls as the platform
  /// allows.  Runs on the loop thread (and once more on loop exit) with
  /// mutex_ released; send failures get UDP loss semantics.
  void flush_socket_tx() {
    std::vector<TxDatagram> batch;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (tx_queue_.empty()) return;
      batch.swap(tx_queue_);
    }
    if (fd_ < 0) return;
#if defined(__linux__)
    constexpr std::size_t kChunk = 64;  // well under the UIO_MAXIOV cap
    std::array<sockaddr_in, kChunk> addrs{};
    std::array<iovec, kChunk> iovs{};
    std::array<mmsghdr, kChunk> msgs{};
    for (std::size_t base = 0; base < batch.size(); base += kChunk) {
      const std::size_t n = std::min(kChunk, batch.size() - base);
      for (std::size_t i = 0; i < n; ++i) {
        TxDatagram& d = batch[base + i];
        addrs[i] = d.addr;
        iovs[i].iov_base = d.data.data();
        iovs[i].iov_len = d.data.size();
        msgs[i].msg_hdr = msghdr{};
        msgs[i].msg_hdr.msg_name = &addrs[i];
        msgs[i].msg_hdr.msg_namelen = sizeof(addrs[i]);
        msgs[i].msg_hdr.msg_iov = &iovs[i];
        msgs[i].msg_hdr.msg_iovlen = 1;
      }
      std::size_t done = 0;
      while (done < n) {
        const int sent = ::sendmmsg(fd_, msgs.data() + done,
                                    static_cast<unsigned>(n - done), 0);
        world_->note_socket_tx(1, sent > 0 ? sent : 0);
        if (sent <= 0) break;  // error: drop the rest of the chunk
        done += static_cast<std::size_t>(sent);
      }
    }
#else
    for (const TxDatagram& d : batch) send_now(d.addr, d.data);
#endif
  }

  void run_loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (running_.load() && !crashed()) {
      // Fire due timers.
      const TimePoint t = now();
      while (!timers_.empty() && timers_.begin()->first <= t) {
        auto node = timers_.extract(timers_.begin());
        TimerEntry& entry = node.mapped();
        const bool live = live_timers_.erase(entry.id) > 0;
        if (!live) continue;
        lock.unlock();
        entry.cb();
        lock.lock();
      }
      // Drain posted events.
      while (!queue_.empty()) {
        auto fn = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();
        fn();
        lock.lock();
        if (!running_.load() || crashed()) break;
      }
      if (!running_.load() || crashed()) break;
      // Everything this iteration's callbacks put on the wire goes out in
      // one sendmmsg before the loop sleeps.
      if (!tx_queue_.empty()) {
        lock.unlock();
        flush_socket_tx();
        lock.lock();
        continue;  // re-check timers/queue: the flush took real time
      }
      // Sleep until the next timer or a new event.
      if (timers_.empty()) {
        cv_.wait(lock);
      } else {
        const Duration until = timers_.begin()->first - now();
        if (until > 0) {
          cv_.wait_for(lock, std::chrono::nanoseconds(until));
        }
      }
    }
    // Clean exit: do not strand staged datagrams (the tail of a drain —
    // final acks and the like).  Crash exits fall through without this.
    lock.unlock();
    if (!crashed()) flush_socket_tx();
  }

  /// Decodes the 4-byte source-id prefix (see RtWorld::route_packet) and
  /// hands the body to the stack; returns false for runt datagrams.
  static bool parse_framed(const std::uint8_t* buf, std::size_t n,
                           NodeId& src, Payload& body) {
    if (n < 4) return false;  // below the src-id header
    src = (static_cast<NodeId>(buf[0]) << 24) |
          (static_cast<NodeId>(buf[1]) << 16) |
          (static_cast<NodeId>(buf[2]) << 8) | static_cast<NodeId>(buf[3]);
    body = Payload(std::span<const std::uint8_t>(buf + 4, n - 4));
    return true;
  }

#if defined(__linux__)
  void run_receiver(std::uint16_t /*base_port*/) {
    // Drain up to a whole burst per recvmmsg call and post it to the loop
    // thread as one closure: one syscall and one lock/notify round per
    // burst instead of per datagram.  MSG_WAITFORONE keeps the blocking
    // semantics (and the SO_RCVTIMEO shutdown poll) of plain recvfrom.
    constexpr std::size_t kRxBatch = 16;
    std::vector<std::vector<std::uint8_t>> bufs(
        kRxBatch, std::vector<std::uint8_t>(65536));
    std::array<sockaddr_in, kRxBatch> from{};
    std::array<iovec, kRxBatch> iovs{};
    std::array<mmsghdr, kRxBatch> msgs{};
    while (running_.load() && !crashed()) {
      for (std::size_t i = 0; i < kRxBatch; ++i) {
        iovs[i].iov_base = bufs[i].data();
        iovs[i].iov_len = bufs[i].size();
        msgs[i].msg_hdr = msghdr{};
        msgs[i].msg_hdr.msg_name = &from[i];
        msgs[i].msg_hdr.msg_namelen = sizeof(from[i]);
        msgs[i].msg_hdr.msg_iov = &iovs[i];
        msgs[i].msg_hdr.msg_iovlen = 1;
      }
      const int n = ::recvmmsg(fd_, msgs.data(), kRxBatch, MSG_WAITFORONE,
                               nullptr);
      if (n <= 0) continue;  // timeout; recheck running flag
      world_->note_socket_rx(1, static_cast<std::uint64_t>(n));
      std::vector<std::pair<NodeId, Payload>> burst;
      burst.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        NodeId src = kNoNode;
        Payload body;
        if (parse_framed(bufs[static_cast<std::size_t>(i)].data(),
                         msgs[static_cast<std::size_t>(i)].msg_len, src,
                         body)) {
          ingress(src, std::move(body), burst);
        }
      }
      enqueue_packet_burst(std::move(burst));
    }
  }
#else
  void run_receiver(std::uint16_t /*base_port*/) {
    std::vector<std::uint8_t> buf(65536);
    while (running_.load() && !crashed()) {
      sockaddr_in from{};
      socklen_t from_len = sizeof(from);
      const ssize_t n =
          ::recvfrom(fd_, buf.data(), buf.size(), 0,
                     reinterpret_cast<sockaddr*>(&from), &from_len);
      if (n < 0) continue;  // timeout; recheck running flag
      world_->note_socket_rx(1, 1);
      NodeId src = kNoNode;
      Payload body;
      if (!parse_framed(buf.data(), static_cast<std::size_t>(n), src, body)) {
        continue;
      }
      std::vector<std::pair<NodeId, Payload>> burst;
      ingress(src, std::move(body), burst);
      enqueue_packet_burst(std::move(burst));
    }
  }
#endif

  /// Receive-path fault gate.  In-process worlds already applied the fault
  /// model at egress (route_packet), so this forwards unconditionally; in
  /// agent mode the supervisor-installed model is consulted here — the
  /// only point this process sees the remote sender's traffic.  Delayed
  /// copies bypass `burst` and ride the delay wheel straight to the queue.
  void ingress(NodeId src, Payload body,
               std::vector<std::pair<NodeId, Payload>>& burst) {
    if (!world_->agent_mode()) {
      burst.emplace_back(src, std::move(body));
      return;
    }
    const IngressDecision d = world_->ingress_decision(src, node_);
    if (d.drop) {
      world_->packets_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    for (int c = 0; c < d.copies; ++c) {
      if (d.extra_latency > 0) {
        world_->wheel_->schedule(d.extra_latency, [this, src, body]() {
          enqueue_packet(src, body);
        });
      } else {
        burst.emplace_back(src, body);
      }
    }
  }

  /// Posts a whole received burst as one closure (one queue append, one
  /// wakeup); the handler still runs once per datagram on the loop thread.
  void enqueue_packet_burst(std::vector<std::pair<NodeId, Payload>> burst) {
    if (burst.empty() || crashed()) return;
    post([this, burst = std::move(burst)]() {
      for (const auto& [src, payload] : burst) {
        if (packet_handler_) packet_handler_(src, payload);
      }
    });
  }

  RtWorld* world_;
  NodeId node_;
  std::uint64_t seed_;
  Rng rng_;
  SteadyClock::time_point epoch_;
  std::atomic<std::uint32_t> incarnation_{0};

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  /// Outbound datagrams staged for the next sendmmsg flush (mutex_).
  std::vector<TxDatagram> tx_queue_;
  std::multimap<TimePoint, TimerEntry> timers_;
  std::unordered_set<TimerId> live_timers_;
  TimerId next_timer_id_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> crashed_{false};
  std::thread loop_thread_;
  std::thread receiver_thread_;
  std::function<void(NodeId, const Payload&)> packet_handler_;
  int fd_ = -1;
};

// ---------------------------------------------------------------------------
// RtWorld
// ---------------------------------------------------------------------------

RtWorld::RtWorld(RtConfig config, const ProtocolLibrary* library,
                 TraceSink* trace)
    : config_(std::move(config)), library_(library), trace_(trace),
      epoch_(SteadyClock::now()) {
  {
    const std::lock_guard<std::mutex> lock(fault_mutex_);
    faults_.drop = config_.drop_probability;
    faults_.duplicate = config_.duplicate_probability;
  }
  if (agent_mode()) {
    // One real stack, full-size tables: modules see the true world size,
    // every other slot stays null.  The transport is necessarily sockets.
    config_.transport = RtTransport::kUdpSockets;
    if (config_.peers.size() != config_.num_stacks) {
      throw std::invalid_argument("rt agent mode: peers must map every node");
    }
    if (config_.local_node >= config_.num_stacks) {
      throw std::invalid_argument("rt agent mode: local_node out of range");
    }
    if (config_.epoch_ns != 0) {
      epoch_ = SteadyClock::time_point(
          std::chrono::duration_cast<SteadyClock::duration>(
              std::chrono::nanoseconds(config_.epoch_ns)));
    }
    peer_addrs_.resize(config_.peers.size());
    for (std::size_t i = 0; i < config_.peers.size(); ++i) {
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(config_.peers[i].port);
      if (::inet_pton(AF_INET, config_.peers[i].host.c_str(),
                      &addr.sin_addr) != 1) {
        throw std::invalid_argument("rt agent mode: bad peer address '" +
                                    config_.peers[i].host + "'");
      }
      peer_addrs_[i] = addr;
    }
    hosts_.resize(config_.num_stacks);
    stacks_.resize(config_.num_stacks);
    const NodeId local = config_.local_node;
    hosts_[local] = std::make_unique<RtHost>(*this, local, config_.seed);
    hosts_[local]->set_epoch(epoch_);
    hosts_[local]->set_initial_incarnation(config_.initial_incarnation);
    stacks_[local] =
        std::make_unique<Stack>(*hosts_[local], library, trace);
    hosts_[local]->open_socket(config_.peers[local].port,
                               /*any_addr=*/true);
    return;
  }
  for (NodeId i = 0; i < config_.num_stacks; ++i) {
    hosts_.push_back(std::make_unique<RtHost>(*this, i, config_.seed));
    hosts_.back()->set_epoch(epoch_);
    stacks_.push_back(std::make_unique<Stack>(*hosts_.back(), library, trace));
  }
  if (config_.transport == RtTransport::kUdpSockets) {
    for (NodeId i = 0; i < config_.num_stacks; ++i) {
      hosts_[i]->open_socket(
          static_cast<std::uint16_t>(config_.udp_base_port + i));
    }
  }
}

RtWorld::~RtWorld() {
  stop();
  // Join the delay wheel before hosts_ is destroyed: its pending closures
  // hold raw host pointers.  Anything still parked on it is dropped — a
  // delayed datagram that was never "transmitted" was never on the wire.
  if (wheel_ != nullptr) wheel_->stop();
}

TimePoint RtWorld::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             SteadyClock::now() - epoch_)
      .count();
}

void RtWorld::start() {
  if (started_) return;
  started_ = true;
  const bool with_receiver = config_.transport == RtTransport::kUdpSockets;
  for (auto& host : hosts_) {
    if (host != nullptr) host->start_threads(with_receiver, config_.udp_base_port);
  }
}

void RtWorld::stop() {
  for (auto& host : hosts_) {
    if (host != nullptr) host->stop_and_join();
  }
  started_ = false;
}

void RtWorld::post_to(NodeId node, std::function<void()> fn) {
  hosts_[node]->post(std::move(fn));
}

void RtWorld::call_on(NodeId node, std::function<void()> fn) {
  std::promise<void> done;
  auto fut = done.get_future();
  hosts_[node]->post([&fn, &done]() {
    fn();
    done.set_value();
  });
  fut.wait();
}

void RtWorld::at(TimePoint t, std::function<void()> fn) {
  schedule_.push_back(ControlEvent{t, kNoNode, std::move(fn)});
}

void RtWorld::at_node(TimePoint t, NodeId node, std::function<void()> fn) {
  schedule_.push_back(ControlEvent{t, node, std::move(fn)});
}

void RtWorld::crash(NodeId node) {
  hosts_[node]->mark_crashed();
  stacks_[node]->trace(TraceKind::kStackCrashed, "", "");
}

void RtWorld::quiesce_node(NodeId node) {
  if (!hosts_[node]->crashed()) return;
  // The crashed stack's loop thread leaves its run loop at the next crash
  // flag check; the join here is what gives the caller a happens-before
  // edge with the dying thread's final counter writes.
  hosts_[node]->stop_and_join();
}

void RtWorld::recover(NodeId node) {
  if (!hosts_[node]->crashed()) return;
  // The crashed stack's loop thread has already exited its run loop (it
  // checks the crash flag); join it and the receiver before touching state.
  hosts_[node]->stop_and_join();
  // Destroy the old incarnation's modules while the node still counts as
  // crashed; stop() handlers run on this (control) thread against a host
  // with no live threads, which is safe — everything they touch is behind
  // the host mutex or local to the dead stack.
  stacks_[node].reset();
  // World-global incarnation stamp: must outgrow every epoch this stack
  // ever adopted from other restarted peers, not just its own restart
  // count (see rp2p epoch adoption).
  hosts_[node]->reset_for_recovery(next_incarnation_++);
  stacks_[node] = std::make_unique<Stack>(*hosts_[node], library_, trace_);
  if (config_.transport == RtTransport::kUdpSockets) {
    hosts_[node]->open_socket(
        static_cast<std::uint16_t>(config_.udp_base_port + node));
  }
  if (started_) {
    hosts_[node]->start_threads(
        config_.transport == RtTransport::kUdpSockets, config_.udp_base_port);
  }
  stacks_[node]->trace(
      TraceKind::kStackRecovered, "", "",
      "incarnation=" + std::to_string(hosts_[node]->incarnation()));
  DPU_LOG(kInfo, "rt") << "recover s" << node << " (incarnation "
                       << hosts_[node]->incarnation() << ")";
}

bool RtWorld::crashed(NodeId node) const {
  // Agent mode holds no state for remote nodes (the supervisor tracks
  // their liveness): report them not-crashed.
  return hosts_[node] != nullptr && hosts_[node]->crashed();
}

std::set<NodeId> RtWorld::crashed_set() const {
  std::set<NodeId> out;
  for (NodeId i = 0; i < hosts_.size(); ++i) {
    if (hosts_[i] != nullptr && hosts_[i]->crashed()) out.insert(i);
  }
  return out;
}

void RtWorld::set_link_filter(
    std::function<bool(NodeId, NodeId)> deliverable) {
  const std::lock_guard<std::mutex> lock(fault_mutex_);
  faults_.link_filter = std::move(deliverable);
}

void RtWorld::set_loss(double drop_probability,
                       double duplicate_probability) {
  const std::lock_guard<std::mutex> lock(fault_mutex_);
  faults_.drop = drop_probability;
  faults_.duplicate = duplicate_probability;
}

void RtWorld::set_link_fault(NodeId src, NodeId dst,
                             std::optional<LinkFault> fault) {
  // Create the delay wheel *before* the fault becomes visible: senders only
  // reach for the wheel after reading extra_latency > 0 under fault_mutex_,
  // and that read happens-after this install, which happens-after the
  // wheel construction.
  if (fault.has_value() && fault->extra_latency > 0 && wheel_ == nullptr) {
    wheel_ = std::make_unique<DelayWheel>();
  }
  const std::lock_guard<std::mutex> lock(fault_mutex_);
  faults_.link_faults.set(hosts_.size(), src, dst, std::move(fault));
}

bool RtWorld::run(TimePoint active_until, TimePoint deadline,
                  std::uint64_t /*max_events*/,
                  const std::function<bool()>& quiesced) {
  start();
  // Fire the pre-scheduled control events in time order (best-effort: the
  // control thread sleeps to each event's time, so everything downstream of
  // an event sees at most scheduler jitter).
  std::stable_sort(schedule_.begin(), schedule_.end(),
                   [](const ControlEvent& a, const ControlEvent& b) {
                     return a.at < b.at;
                   });
  auto sleep_until_world_time = [this](TimePoint t) {
    const Duration remaining = t - now();
    if (remaining > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(remaining));
    }
  };
  for (ControlEvent& ev : schedule_) {
    sleep_until_world_time(ev.at);
    if (ev.node == kNoNode) {
      ev.fn();  // driver event (crash/recover/partition/loss) — runs here
    } else if (hosts_[ev.node] != nullptr && !hosts_[ev.node]->crashed()) {
      post_to(ev.node, std::move(ev.fn));
    }
  }
  schedule_.clear();
  sleep_until_world_time(active_until);

  // Drain: poll for quiescence until the deadline.  Without a callback the
  // drain is a short fixed grace period.
  const TimePoint drain_deadline =
      quiesced ? deadline : std::min(deadline, active_until + 2 * kSecond);
  constexpr Duration kPoll = 100 * kMillisecond;
  while (now() < drain_deadline) {
    if (quiesced && quiesced()) break;
    std::this_thread::sleep_for(std::chrono::nanoseconds(
        std::min<Duration>(kPoll, drain_deadline - now())));
  }
  // Stop every stack thread so the caller can harvest module state from
  // this thread without racing.
  stop();
  return true;
}

sockaddr_in RtWorld::peer_sockaddr(NodeId dst) const {
  if (agent_mode()) return peer_addrs_[dst];
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port =
      htons(static_cast<std::uint16_t>(config_.udp_base_port + dst));
  return addr;
}

RtWorld::IngressDecision RtWorld::ingress_decision(NodeId src, NodeId dst) {
  IngressDecision d;
  const std::lock_guard<std::mutex> lock(fault_mutex_);
  if (faults_.link_filter && !faults_.link_filter(src, dst)) {
    d.drop = true;
    return d;
  }
  double drop_p = faults_.drop;
  double dup_p = faults_.duplicate;
  if (const LinkFault* fault =
          faults_.link_faults.find(hosts_.size(), src, dst)) {
    drop_p = fault->drop;
    dup_p = fault->duplicate;
    d.extra_latency = fault->extra_latency;
  }
  if (drop_p > 0.0 || dup_p > 0.0) {
    // Same synchronized-stream rationale as route_packet: the receiver
    // thread decides concurrently with control-thread fault updates.
    static thread_local Rng drop_rng(0xD0D0'CAFE ^ config_.seed);
    if (drop_rng.chance(drop_p)) {
      d.drop = true;
    } else if (drop_rng.chance(dup_p)) {
      d.copies = 2;
    }
  }
  // Delayed ingress copies need the wheel; create it lazily here the same
  // way set_link_fault does for egress (we hold fault_mutex_, and the
  // receiver only dereferences after observing extra_latency > 0).
  if (d.extra_latency > 0 && wheel_ == nullptr) {
    wheel_ = std::make_unique<DelayWheel>();
  }
  return d;
}

void RtWorld::route_packet(NodeId src, NodeId dst, Payload data) {
  if (dst >= hosts_.size()) return;
  if (hosts_[src]->crashed()) return;  // dead stacks emit nothing
  packets_sent_.fetch_add(1, std::memory_order_relaxed);

  if (agent_mode()) {
    // Egress applies no faults in agent mode: drops, duplicates, partitions
    // and slow links are the *receiver's* ingress decision (each agent gets
    // the model from the supervisor), so a fault installed on one side
    // cannot double-fire.  Frame with the source id and resolve the peer.
    if (dst == config_.local_node) {
      // Self-addressed traffic short-circuits the wire, like in-proc.
      hosts_[dst]->enqueue_packet(src, std::move(data));
      return;
    }
    Bytes framed;
    framed.reserve(data.size() + 4);
    framed.push_back(static_cast<std::uint8_t>(src >> 24));
    framed.push_back(static_cast<std::uint8_t>(src >> 16));
    framed.push_back(static_cast<std::uint8_t>(src >> 8));
    framed.push_back(static_cast<std::uint8_t>(src));
    framed.insert(framed.end(), data.span().begin(), data.span().end());
    hosts_[src]->socket_send(peer_sockaddr(dst), framed);
    return;
  }

  // Snapshot the fault decision under the lock; deliver outside it.
  bool drop = false;
  int copies = 1;
  Duration extra_latency = 0;
  {
    const std::lock_guard<std::mutex> lock(fault_mutex_);
    if (faults_.link_filter && !faults_.link_filter(src, dst)) {
      drop = true;
    } else {
      double drop_p = faults_.drop;
      double dup_p = faults_.duplicate;
      if (const LinkFault* fault =
              faults_.link_faults.find(hosts_.size(), src, dst)) {
        drop_p = fault->drop;
        dup_p = fault->duplicate;
        extra_latency = fault->extra_latency;
      }
      if (drop_p > 0.0 || dup_p > 0.0) {
        // Drop decisions need their own synchronized stream: many sender
        // threads route concurrently.
        static thread_local Rng drop_rng(0xD0D0'CAFE ^ config_.seed);
        if (drop_rng.chance(drop_p)) {
          drop = true;
        } else if (drop_rng.chance(dup_p)) {
          copies = 2;
        }
      }
    }
  }
  if (drop || hosts_[dst]->crashed()) {
    packets_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  if (config_.transport == RtTransport::kUdpSockets) {
    // Prefix the datagram with the source node id (real sockets do not know
    // our logical ids).
    Bytes framed;
    framed.reserve(data.size() + 4);
    framed.push_back(static_cast<std::uint8_t>(src >> 24));
    framed.push_back(static_cast<std::uint8_t>(src >> 16));
    framed.push_back(static_cast<std::uint8_t>(src >> 8));
    framed.push_back(static_cast<std::uint8_t>(src));
    framed.insert(framed.end(), data.span().begin(), data.span().end());
    const sockaddr_in addr = peer_sockaddr(dst);
    for (int c = 0; c < copies; ++c) {
      if (extra_latency > 0) {
        // Slow-link fault: park the datagram on the delay wheel and put it
        // on the wire when the delay expires (the fault models one-way
        // path latency, so sender-side delay is equivalent).  The wheel —
        // not the sender's timer heap — so the injected latency does not
        // compete with protocol timers for the stack thread.
        wheel_->schedule(extra_latency,
                         [host = hosts_[src].get(), addr, framed]() {
                           host->socket_send(addr, framed);
                         });
      } else {
        hosts_[src]->socket_send(addr, framed);
      }
    }
    return;
  }
  for (int c = 0; c < copies; ++c) {
    if (extra_latency > 0) {
      wheel_->schedule(extra_latency,
                       [host = hosts_[dst].get(), src, data]() {
                         host->enqueue_packet(src, data);
                       });
    } else {
      hosts_[dst]->enqueue_packet(src, data);
    }
  }
}

}  // namespace dpu
