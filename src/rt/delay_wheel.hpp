// DelayWheel — a dedicated timing thread for transport-level delay
// injection on the real-time engine.
//
// Slow-link faults (LinkFault::extra_latency) used to park the delayed
// datagram on a *stack's* timer heap, which had two problems: the delay
// competed with protocol timers for the stack thread's attention (a busy
// event loop skews the injected latency), and it created a cross-thread
// dependency from the transport into a host's timer state — exactly the
// kind of coupling the sharded simulator had to remove, and worth removing
// here for the same reason.  The wheel owns one plain thread and a
// deadline-ordered heap of closures; scheduling is mutex + condvar, and
// the closures it runs (enqueue_packet / socket_send) are thread-safe
// transport entry points, so no stack state is ever touched from the wheel
// thread.
//
// stop() joins the thread and DROPS whatever has not come due — matching
// the old behavior of discarding a stopping stack's timer heap: a delayed
// datagram that has not been "transmitted" by shutdown was never on the
// wire.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/time.hpp"

namespace dpu {

class DelayWheel {
 public:
  DelayWheel() : thread_([this] { loop(); }) {}

  DelayWheel(const DelayWheel&) = delete;
  DelayWheel& operator=(const DelayWheel&) = delete;

  ~DelayWheel() { stop(); }

  /// Runs `fn` on the wheel thread once `delay` has elapsed.  Entries with
  /// equal deadlines run in schedule order.
  void schedule(Duration delay, std::function<void()> fn) {
    const auto due = std::chrono::steady_clock::now() +
                     std::chrono::nanoseconds(std::max<Duration>(delay, 0));
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      heap_.push_back(Entry{due, next_seq_++, std::move(fn)});
      std::push_heap(heap_.begin(), heap_.end(), After{});
    }
    cv_.notify_one();
  }

  /// Joins the wheel thread; pending (not yet due) entries are dropped.
  /// Idempotent.
  void stop() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
      stopping_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

 private:
  struct Entry {
    std::chrono::steady_clock::time_point due;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct After {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.due != b.due) return a.due > b.due;
      return a.seq > b.seq;
    }
  };

  void loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (stopping_) return;
      if (heap_.empty()) {
        cv_.wait(lock);
        continue;
      }
      const auto due = heap_.front().due;
      if (std::chrono::steady_clock::now() < due) {
        cv_.wait_until(lock, due);
        continue;
      }
      std::pop_heap(heap_.begin(), heap_.end(), After{});
      std::function<void()> fn = std::move(heap_.back().fn);
      heap_.pop_back();
      lock.unlock();
      fn();  // thread-safe transport entry points only
      lock.lock();
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
  bool stopping_ = false;
  std::thread thread_;  // last member: started after the state it uses
};

}  // namespace dpu
