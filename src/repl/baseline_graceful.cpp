#include "repl/baseline_graceful.hpp"

#include "util/log.hpp"

namespace dpu {

namespace {
void encode_params(BufWriter& w, const ModuleParams& params) {
  w.put_varint(params.entries().size());
  for (const auto& [key, value] : params.entries()) {
    w.put_string(key);
    w.put_string(value);
  }
}

ModuleParams decode_params(BufReader& r) {
  ModuleParams params;
  const std::uint64_t n = r.get_varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key = r.get_string();
    params.set(key, r.get_string());
  }
  return params;
}
}  // namespace

GracefulSwitchModule* GracefulSwitchModule::create(Stack& stack,
                                                   Config config) {
  auto* m = stack.emplace_module<GracefulSwitchModule>(
      stack, "graceful-" + config.facade_service, config);
  stack.bind<AbcastApi>(config.facade_service, m, m);
  return m;
}

GracefulSwitchModule::GracefulSwitchModule(Stack& stack,
                                           std::string instance_name,
                                           Config config)
    : Module(stack, std::move(instance_name)),
      config_(config),
      rp2p_(stack.require<Rp2pApi>(kRp2pService)),
      up_(stack.upcalls<AbcastListener>(config_.facade_service)),
      ctl_channel_(fnv1a64(Module::instance_name() + "/ctl")) {}

void GracefulSwitchModule::start() {
  manager_ = UpdateManagerModule::of(stack());
  if (manager_ != nullptr) manager_->register_mechanism(this);
  rp2p_.call([this](Rp2pApi& rp2p) {
    rp2p.rp2p_bind_channel(ctl_channel_,
                           [this](NodeId from, const Payload& data) {
                             on_ctl(from, data);
                           });
  });
  cur_protocol_ = config_.initial_protocol;
  active_protocol_ = config_.initial_protocol;
  // AAC version 0.
  ModuleParams params = config_.initial_params;
  params.set("instance", cur_protocol_ + "@aac#0");
  stack().create_module(cur_protocol_, aac_service(0), params);
  stack().listen<AbcastListener>(aac_service(0), this, this);
}

void GracefulSwitchModule::stop() {
  if (manager_ != nullptr) manager_->unregister_mechanism(this);
  rp2p_.call([this](Rp2pApi& rp2p) { rp2p.rp2p_release_channel(ctl_channel_); });
  stack().unlisten<AbcastListener>(aac_service(version_), this);
}

// ---------------------------------------------------------------------------
// Data path
// ---------------------------------------------------------------------------

void GracefulSwitchModule::abcast(Payload payload) {
  if (phase_ == Phase::kDraining || phase_ == Phase::kAwaitingMarker) {
    // The old AAC is deactivating; hold the call until activation.
    ++calls_queued_;
    queued_calls_.push_back(std::move(payload));
    return;
  }
  forward_to_active(payload);
}

void GracefulSwitchModule::forward_to_active(const Payload& payload) {
  const MsgId id{env().node_id(), next_local_++};
  in_flight_.insert(id);
  BufWriter w(payload.size() + 24);
  w.put_u8(kData);
  id.encode(w);
  w.put_blob(payload);
  stack().require<AbcastApi>(aac_service(version_))
      .call([bytes = w.take_payload()](AbcastApi& api) mutable {
        api.abcast(std::move(bytes));
      });
}

void GracefulSwitchModule::adeliver(NodeId /*sender*/,
                                    const Bytes& inner_payload) {
  try {
    BufReader r(inner_payload);
    const auto tag = static_cast<Tag>(r.get_u8());
    if (tag == kActivateMarker) {
      const std::uint64_t switch_id = r.get_varint();
      r.expect_done();
      if (switch_id == switch_id_ && phase_ == Phase::kAwaitingMarker) {
        activate();
      }
      return;
    }
    if (tag != kData) throw CodecError("unknown graceful tag");
    const MsgId id = MsgId::decode(r);
    Bytes payload = r.get_blob();
    r.expect_done();
    if (id.origin == env().node_id()) {
      in_flight_.erase(id);
      if (phase_ == Phase::kDraining) check_drained();
    }
    up_.notify([&](AbcastListener& l) { l.adeliver(id.origin, payload); });
  } catch (const CodecError& e) {
    DPU_LOG(kError, "graceful") << "s" << env().node_id()
                                << " malformed wrapper: " << e.what();
  }
}

// ---------------------------------------------------------------------------
// Coordinated adaptation
// ---------------------------------------------------------------------------

void GracefulSwitchModule::change_adaptation(const std::string& protocol,
                                             const ModuleParams& params) {
  // `is_ca_` covers the window between issuing PREPARE and our own PREPARE
  // arriving back (control messages are asynchronous, even to self).
  if (phase_ != Phase::kIdle || is_ca_) {
    throw std::logic_error("graceful: a switch is already in progress");
  }
  const ProtocolInfo* info =
      stack().library() != nullptr ? stack().library()->find(protocol)
                                   : nullptr;
  if (info == nullptr) {
    throw std::logic_error("graceful: unknown protocol '" + protocol + "'");
  }
  // The Graceful Adaptation restriction: an AAC may only use services the
  // host module already requires (no recursive creation).
  for (const std::string& s : info->requires_services) {
    if (!stack().slot(s).bound()) {
      throw std::logic_error(
          "graceful: cannot adapt to '" + protocol + "': required service '" +
          s + "' is not bound (AACs are limited to the services of their "
          "module)");
    }
  }
  is_ca_ = true;
  switch_id_ = version_ + 1;  // our own PREPARE (self-delivered) confirms it
  prepared_from_.clear();
  drained_from_.clear();
  for (NodeId dst = 0; dst < env().world_size(); ++dst) {
    send_ctl(dst, kPrepare, version_ + 1, protocol, params);
  }
}

void GracefulSwitchModule::send_ctl(NodeId dst, CtlType type,
                                    std::uint64_t switch_id,
                                    const std::string& protocol,
                                    const ModuleParams& params) {
  BufWriter w(protocol.size() + 32);
  w.put_u8(type);
  w.put_varint(switch_id);
  w.put_string(protocol);
  encode_params(w, params);
  rp2p_.call([this, dst, bytes = w.take_payload()](Rp2pApi& rp2p) mutable {
    rp2p.rp2p_send(dst, ctl_channel_, std::move(bytes));
  });
}

void GracefulSwitchModule::on_ctl(NodeId from, const Payload& data) {
  CtlType type{};
  std::uint64_t switch_id = 0;
  std::string protocol;
  ModuleParams params;
  try {
    BufReader r(data);
    type = static_cast<CtlType>(r.get_u8());
    switch_id = r.get_varint();
    protocol = r.get_string();
    params = decode_params(r);
    r.expect_done();
  } catch (const CodecError& e) {
    DPU_LOG(kWarn, "graceful") << "s" << env().node_id()
                               << " malformed control message: " << e.what();
    return;
  }

  switch (type) {
    case kPrepare:
      if (phase_ != Phase::kIdle || switch_id != version_ + 1) return;
      prepare_new_aac(switch_id, protocol, params);
      send_ctl(from, kPrepared, switch_id, "", ModuleParams());
      break;
    case kPrepared:
      if (!is_ca_ || switch_id != switch_id_) return;
      prepared_from_.insert(from);
      if (prepared_from_.size() == env().world_size()) {
        // Barrier 1 complete: deactivate everywhere.
        for (NodeId dst = 0; dst < env().world_size(); ++dst) {
          send_ctl(dst, kDeactivate, switch_id, "", ModuleParams());
        }
      }
      break;
    case kDeactivate:
      if (phase_ != Phase::kPrepared || switch_id != switch_id_) return;
      begin_drain();
      break;
    case kDrained:
      if (!is_ca_ || switch_id != switch_id_) return;
      drained_from_.insert(from);
      if (drained_from_.size() == env().world_size()) {
        // Barrier 2 complete: broadcast the activation marker through the
        // OLD AAC — its total order is the consistent activation point.
        BufWriter w(12);
        w.put_u8(kActivateMarker);
        w.put_varint(switch_id_);
        stack().require<AbcastApi>(aac_service(version_))
            .call([bytes = w.take_payload()](AbcastApi& api) mutable {
              api.abcast(std::move(bytes));
            });
      }
      break;
  }
}

void GracefulSwitchModule::prepare_new_aac(std::uint64_t switch_id,
                                           const std::string& protocol,
                                           const ModuleParams& params) {
  switch_id_ = switch_id;
  phase_ = Phase::kPrepared;
  ModuleParams create_params = params;
  create_params.set("instance",
                    protocol + "@aac#" + std::to_string(switch_id));
  stack().create_module(protocol, aac_service(switch_id), create_params);
  stack().listen<AbcastListener>(aac_service(switch_id), this, this);
  cur_protocol_ = protocol;
}

void GracefulSwitchModule::begin_drain() {
  phase_ = Phase::kDraining;
  queue_since_ = env().now();
  stack().trace(TraceKind::kCustom, config_.facade_service, instance_name(),
                kTraceDeactivated);
  check_drained();
}

void GracefulSwitchModule::check_drained() {
  if (phase_ != Phase::kDraining || !in_flight_.empty()) return;
  phase_ = Phase::kAwaitingMarker;
  // Report to the CA; the CA of this switch is whoever sent PREPARE — we
  // reply to everyone to avoid tracking it (only the CA counts DRAINED).
  for (NodeId dst = 0; dst < env().world_size(); ++dst) {
    send_ctl(dst, kDrained, switch_id_, "", ModuleParams());
  }
}

void GracefulSwitchModule::activate() {
  stack().unlisten<AbcastListener>(aac_service(version_), this);
  // Keep listening on the new version (registered at prepare); the old AAC
  // is deactivated but remains in the stack.
  version_ = switch_id_;
  phase_ = Phase::kIdle;
  is_ca_ = false;
  ++switches_completed_;
  active_protocol_ = cur_protocol_;
  total_queue_window_ += env().now() - queue_since_;
  stack().trace(TraceKind::kCustom, config_.facade_service, instance_name(),
                kTraceActivated);
  if (manager_ != nullptr) {
    manager_->notify_update_complete(*this, active_protocol_, version_);
  }
  while (!queued_calls_.empty()) {
    Payload payload = std::move(queued_calls_.front());
    queued_calls_.pop_front();
    forward_to_active(payload);
  }
}

}  // namespace dpu
