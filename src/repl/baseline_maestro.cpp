#include "repl/baseline_maestro.hpp"

#include "consensus/consensus.hpp"
#include "util/log.hpp"

namespace dpu {

namespace {
void encode_params(BufWriter& w, const ModuleParams& params) {
  w.put_varint(params.entries().size());
  for (const auto& [key, value] : params.entries()) {
    w.put_string(key);
    w.put_string(value);
  }
}

ModuleParams decode_params(BufReader& r) {
  ModuleParams params;
  const std::uint64_t n = r.get_varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key = r.get_string();
    params.set(key, r.get_string());
  }
  return params;
}
}  // namespace

MaestroSwitchModule* MaestroSwitchModule::create(Stack& stack, Config config) {
  auto* m = stack.emplace_module<MaestroSwitchModule>(
      stack, "maestro-" + config.facade_service, config);
  stack.bind<AbcastApi>(config.facade_service, m, m);
  return m;
}

MaestroSwitchModule::MaestroSwitchModule(Stack& stack,
                                         std::string instance_name,
                                         Config config)
    : Module(stack, std::move(instance_name)),
      config_(config),
      inner_(stack.require<AbcastApi>(config_.inner_service)),
      rp2p_(stack.require<Rp2pApi>(kRp2pService)),
      up_(stack.upcalls<AbcastListener>(config_.facade_service)),
      ready_channel_(fnv1a64(Module::instance_name() + "/ready")) {}

void MaestroSwitchModule::start() {
  manager_ = UpdateManagerModule::of(stack());
  if (manager_ != nullptr) manager_->register_mechanism(this);
  stack().listen<AbcastListener>(config_.inner_service, this, this);
  rp2p_.call([this](Rp2pApi& rp2p) {
    rp2p.rp2p_bind_channel(ready_channel_,
                           [this](NodeId from, const Payload& data) {
                             on_ready(from, data);
                           });
  });
  cur_protocol_ = config_.initial_protocol;
  // Build the initial protocol layer (consensus + abcast), version 0.
  ModuleParams cparams;
  cparams.set("instance", "consensus@maestro#0");
  stack().create_module(config_.consensus_protocol, kConsensusService, cparams);
  ModuleParams params = config_.initial_params;
  params.set("instance", cur_protocol_ + "@maestro#0");
  stack().create_module(cur_protocol_, config_.inner_service, params);
}

void MaestroSwitchModule::stop() {
  if (manager_ != nullptr) manager_->unregister_mechanism(this);
  stack().unlisten<AbcastListener>(config_.inner_service, this);
  rp2p_.call([this](Rp2pApi& rp2p) { rp2p.rp2p_release_channel(ready_channel_); });
}

void MaestroSwitchModule::abcast(Payload payload) {
  if (blocked_) {
    // The measurable Maestro drawback: the application is blocked during the
    // stack switch (calls are queued, not lost).
    ++calls_queued_;
    queued_while_blocked_.push_back(std::move(payload));
    return;
  }
  const MsgId id{env().node_id(), next_local_++};
  undelivered_.emplace(id, payload);
  inner_abcast_wrapped(id, payload);
}

void MaestroSwitchModule::inner_abcast_wrapped(const MsgId& id,
                                               const Payload& payload) {
  BufWriter w(payload.size() + 24);
  w.put_u8(kNil);
  w.put_varint(version_);
  id.encode(w);
  w.put_blob(payload);
  inner_.call([bytes = w.take_payload()](AbcastApi& api) mutable {
    api.abcast(std::move(bytes));
  });
}

void MaestroSwitchModule::change_stack(const std::string& protocol,
                                       const ModuleParams& params) {
  if (stack().library() == nullptr ||
      stack().library()->find(protocol) == nullptr) {
    throw std::logic_error("change_stack: unknown protocol '" + protocol + "'");
  }
  BufWriter w(protocol.size() + 32);
  w.put_u8(kSwitchMarker);
  w.put_varint(version_);
  w.put_string(protocol);
  encode_params(w, params);
  inner_.call([bytes = w.take_payload()](AbcastApi& api) mutable {
    api.abcast(std::move(bytes));
  });
}

void MaestroSwitchModule::adeliver(NodeId /*sender*/,
                                   const Bytes& inner_payload) {
  try {
    BufReader r(inner_payload);
    const auto tag = static_cast<Tag>(r.get_u8());
    const std::uint64_t version = r.get_varint();
    if (tag == kSwitchMarker) {
      std::string protocol = r.get_string();
      ModuleParams params = decode_params(r);
      r.expect_done();
      perform_local_switch(protocol, params);
      return;
    }
    if (tag != kNil) throw CodecError("unknown maestro tag");
    const MsgId id = MsgId::decode(r);
    Bytes payload = r.get_blob();
    r.expect_done();
    if (version != version_) return;  // stale: lost with the old stack
    if (id.origin == env().node_id()) undelivered_.erase(id);
    up_.notify([&](AbcastListener& l) { l.adeliver(id.origin, payload); });
  } catch (const CodecError& e) {
    DPU_LOG(kError, "maestro") << "s" << env().node_id()
                               << " malformed wrapper: " << e.what();
  }
}

void MaestroSwitchModule::perform_local_switch(const std::string& protocol,
                                               const ModuleParams& params) {
  ++version_;
  // (1) Block the application.
  blocked_ = true;
  blocked_since_ = env().now();
  ready_from_.clear();
  stack().trace(TraceKind::kCustom, config_.facade_service, instance_name(),
                kTraceBlocked);

  // (2) Finalize the old stack: stop + destroy the whole protocol layer
  // (ABcast and its consensus substrate).
  Module* old_abcast = stack().slot(config_.inner_service).provider_module();
  Module* old_consensus = stack().slot(kConsensusService).provider_module();
  if (old_abcast != nullptr) stack().destroy_module(old_abcast);
  if (old_consensus != nullptr) stack().destroy_module(old_consensus);

  // (3) Rebuild bottom-up with fresh instance names.
  const std::string suffix = "@maestro#" + std::to_string(version_);
  ModuleParams cparams;
  cparams.set("instance", "consensus" + suffix);
  stack().create_module(config_.consensus_protocol, kConsensusService, cparams);
  ModuleParams aparams = params;
  aparams.set("instance", protocol + suffix);
  stack().create_module(protocol, config_.inner_service, aparams);
  cur_protocol_ = protocol;

  // (4) Coordinate the start: tell everyone we are ready, then wait for all.
  BufWriter w(12);
  w.put_varint(version_);
  const Payload ready = w.take_payload();
  for (NodeId dst = 0; dst < env().world_size(); ++dst) {
    rp2p_.call([this, dst, ready](Rp2pApi& rp2p) mutable {
      rp2p.rp2p_send(dst, ready_channel_, std::move(ready));
    });
  }
}

void MaestroSwitchModule::on_ready(NodeId from, const Payload& data) {
  try {
    BufReader r(data);
    const std::uint64_t version = r.get_varint();
    r.expect_done();
    if (version != version_) return;  // stale barrier round
  } catch (const CodecError&) {
    return;
  }
  ready_from_.insert(from);
  maybe_unblock();
}

void MaestroSwitchModule::maybe_unblock() {
  if (!blocked_ || ready_from_.size() < env().world_size()) return;
  blocked_ = false;
  total_blocked_time_ += env().now() - blocked_since_;
  ++switches_completed_;
  stack().trace(TraceKind::kCustom, config_.facade_service, instance_name(),
                kTraceUnblocked);
  if (manager_ != nullptr) {
    manager_->notify_update_complete(*this, cur_protocol_, version_);
  }

  // Re-issue in-flight messages lost with the old stack, then the calls
  // queued while blocked.
  for (const auto& [id, payload] : undelivered_) {
    inner_abcast_wrapped(id, payload);
  }
  while (!queued_while_blocked_.empty()) {
    Payload payload = std::move(queued_while_blocked_.front());
    queued_while_blocked_.pop_front();
    const MsgId id{env().node_id(), next_local_++};
    undelivered_.emplace(id, payload);
    inner_abcast_wrapped(id, payload);
  }
}

}  // namespace dpu
