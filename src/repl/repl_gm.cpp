#include "repl/repl_gm.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace dpu {

namespace {

ReplacementFacadeBase::FacadeConfig to_facade_config(
    const ReplGmConfig& config) {
  ReplacementFacadeBase::FacadeConfig f;
  f.facade_service = config.facade_service;
  f.inner_service = config.inner_service;
  f.versioned_inner = true;
  f.initial_protocol = config.initial_protocol;
  f.initial_params = config.initial_params;
  f.retire_after = config.retire_after;
  return f;
}

}  // namespace

ReplGmModule* ReplGmModule::create(Stack& stack, Config config) {
  auto* m = stack.emplace_module<ReplGmModule>(
      stack, "repl-" + config.facade_service, config);
  stack.bind<GmApi>(config.facade_service, m, m);
  return m;
}

ReplGmModule::ReplGmModule(Stack& stack, std::string instance_name,
                           Config config)
    : ReplacementFacadeBase(stack, std::move(instance_name),
                            to_facade_config(config)),
      topics_(stack.require<TopicsApi>(kTopicsService)),
      up_(stack.upcalls<GmListener>(fcfg_.facade_service)),
      switch_topic_(Module::instance_name() + "/switch") {}

void ReplGmModule::start() {
  // The facade's initial view mirrors a fresh GM instance's: the full
  // static world, id 0 (gm/gm.cpp start()).
  view_.id = 0;
  view_.members.clear();
  for (NodeId i = 0; i < env().world_size(); ++i) view_.members.push_back(i);
  history_.push_back(view_);

  topics_.call([this](TopicsApi& topics) {
    topics.subscribe(switch_topic_,
                     [this](NodeId sender, const Bytes& payload) {
                       on_change_message(sender, payload);
                     });
  });
  facade_start();  // installs version 0; on_inner_installed attaches it
}

void ReplGmModule::stop() {
  facade_stop();
  if (!listening_on_.empty()) {
    stack().unlisten<GmListener>(listening_on_, this);
    listening_on_.clear();
  }
  topics_.call([this](TopicsApi& topics) {
    topics.unsubscribe(switch_topic_);
  });
}

// ---------------------------------------------------------------------------
// Facade GmApi: forward to the current inner version
// ---------------------------------------------------------------------------

template <class Fn>
void ReplGmModule::call_inner(Fn&& fn) {
  stack().slot(inner_service_name()).call_with<GmApi>(std::forward<Fn>(fn));
}

void ReplGmModule::gm_join(NodeId node) {
  call_inner([node](GmApi& gm) { gm.gm_join(node); });
}

void ReplGmModule::gm_leave(NodeId node) {
  call_inner([node](GmApi& gm) { gm.gm_leave(node); });
}

void ReplGmModule::gm_exclude(NodeId node) {
  call_inner([node](GmApi& gm) { gm.gm_exclude(node); });
}

// ---------------------------------------------------------------------------
// Inner views: renumber and forward
// ---------------------------------------------------------------------------

void ReplGmModule::on_view(const View& view) {
  view_.members = view.members;
  ++view_.id;  // continuous facade numbering across versions
  history_.push_back(view_);
  up_.notify([this](GmListener& l) { l.on_view(view_); });
}

// ---------------------------------------------------------------------------
// ReplacementFacadeBase hooks
// ---------------------------------------------------------------------------

void ReplGmModule::send_inner_change(Payload wrapped) {
  // The change rides the totally-ordered topic channel — not GM's own
  // interface (join/leave/exclude cannot carry it) but the ordered layer GM
  // itself is built on, so every stack still switches at one point of the
  // total order relative to every membership op.
  topics_.call([this, wrapped = std::move(wrapped)](TopicsApi& topics) mutable {
    topics.publish(switch_topic_, std::move(wrapped));
  });
}

void ReplGmModule::send_inner_data(Payload /*wrapped*/, std::uint64_t /*ctx*/) {
  // GM requests are not tracked/reissued (the facade owes view consistency,
  // not op delivery), so the undelivered set stays empty and the base never
  // takes this path.
  DPU_LOG(kError, "repl-gm") << "s" << env().node_id()
                             << " unexpected data reissue";
}

void ReplGmModule::on_inner_installed(Module* /*created*/, std::uint64_t sn) {
  // Listen to exactly the current version's views (the response interface
  // carries no version information, hence the versioned inner slots).
  if (!listening_on_.empty()) {
    stack().unlisten<GmListener>(listening_on_, this);
  }
  listening_on_ = inner_service_name(sn);
  stack().listen<GmListener>(listening_on_, this, this);

  if (sn == 0) return;

  // State continuity: the fresh instance boots with the full world; every
  // stack deterministically re-excludes the non-members of the pre-switch
  // view V (identical everywhere — the switch point is totally ordered).
  // The n-fold duplicates are no-ops by GM's idempotence rule, so the view
  // sequence stays identical on every stack.
  for (NodeId node = 0; node < env().world_size(); ++node) {
    if (!view_.contains(node)) {
      call_inner([node](GmApi& gm) { gm.gm_exclude(node); });
    }
  }
}

// ---------------------------------------------------------------------------
// Change messages (totally ordered)
// ---------------------------------------------------------------------------

void ReplGmModule::on_change_message(NodeId from, const Bytes& payload) {
  (void)from;
  try {
    Unwrapped m = unwrap(payload);
    if (m.tag == kNil) throw CodecError("data on the switch topic");
    // Like Algorithm 1, no sn test: change messages are processed in
    // delivery order, which keeps chained replacements consistent.  That
    // same property is the GM recovery story (state_sync = kNone): the
    // switch topic rides the abcast facade, so a recovered stack replaying
    // abcast history re-delivers every change message in order and
    // re-performs every gm switch organically.
    perform_switch_from(m);
  } catch (const CodecError& e) {
    DPU_LOG(kError, "repl-gm") << "s" << env().node_id()
                               << " malformed change message: " << e.what();
  }
}

}  // namespace dpu
