// UpdateApi — the service-generic dynamic-update control plane.
//
// The paper's claim is that dynamic protocol update needs only the
// *specification* of the service being replaced; nothing about the approach
// is specific to atomic broadcast.  This header makes that claim an API:
//
//  * `UpdateApi` (provided by `UpdateManagerModule` on the "update" service)
//    is the single entry point applications and drivers use to switch any
//    replaceable layer: `request_update(service, library, params)`,
//    `current_version(service)`, and completion upcalls (`UpdateListener`).
//  * `UpdateMechanism` is the strategy interface behind it.  Each of the
//    four replacement machineries in this repo — Repl-ABcast (Algorithm 1),
//    Repl-Consensus (the paper's future-work extension), and the Maestro /
//    Graceful-Adaptation baselines — implements it, so "switch the abcast
//    protocol via Algorithm 1" and "switch the consensus implementation
//    underneath an unmodified CT-ABcast" are the same call with different
//    `service` arguments.
//  * The `ProtocolRegistry` (core/registry.hpp) supplies the static side:
//    which services are declared replaceable and which library names
//    implement them.  `request_update` validates against it, so a typo'd
//    library or an update of a never-declared service fails fast at the
//    control plane instead of deep inside a mechanism.
//
// The manager is deliberately thin: mechanisms keep owning their wire
// protocols and switch algorithms; the manager owns validation, dispatch,
// version bookkeeping and completion fan-out (listeners + the generic trace
// markers the scenario engine's convergence measurement consumes).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/module.hpp"
#include "core/stack.hpp"

namespace dpu {

inline constexpr char kUpdateService[] = "update";

/// What a service is currently running, as seen by the local stack.
struct UpdateStatus {
  /// Library name of the running implementation (e.g. "consensus.mr").
  std::string protocol;
  /// Completed switches of this service on this stack (0 = initial).
  std::uint64_t version = 0;
};

/// Completion record delivered to UpdateListeners when the *local* stack
/// finishes running an update (every stack performs every update; listeners
/// on different stacks fire at their own completion points).
struct UpdateEvent {
  std::string service;
  std::string protocol;   ///< library now running
  std::string mechanism;  ///< mechanism that executed the switch
  std::uint64_t version = 0;
  TimePoint at = 0;
};

/// Response interface of the "update" service.
struct UpdateListener {
  virtual ~UpdateListener() = default;
  virtual void on_update_complete(const UpdateEvent& event) = 0;
};

/// Strategy interface: one replacement machinery managing one service.
/// Implementations register with the stack's UpdateManagerModule at start
/// (and unregister at stop), which is how the control plane learns what is
/// switchable on this stack.
class UpdateMechanism {
 public:
  virtual ~UpdateMechanism() = default;

  /// The (facade) service this mechanism manages, e.g. "abcast".
  [[nodiscard]] virtual const std::string& update_service() const = 0;

  /// Stable mechanism identifier ("repl", "maestro", ...), for traces and
  /// completion events.
  [[nodiscard]] virtual const char* update_mechanism_name() const = 0;

  /// Initiates a *global* switch of the managed service to `protocol` (a
  /// registry library name).  Asynchronous: completion is reported per stack
  /// through UpdateManagerModule::notify_update_complete.
  virtual void request_update(const std::string& protocol,
                              const ModuleParams& params) = 0;

  /// Protocol/version the managed service currently runs on this stack.
  [[nodiscard]] virtual UpdateStatus update_status() const = 0;
};

/// Call interface of the "update" service.
struct UpdateApi {
  virtual ~UpdateApi() = default;

  /// Requests a global switch of `service` to `protocol`.  Validates against
  /// the ProtocolRegistry (service declared replaceable, library known and
  /// providing that service) and the registered mechanisms; throws
  /// std::invalid_argument when validation fails.
  virtual void request_update(const std::string& service,
                              const std::string& protocol,
                              const ModuleParams& params = ModuleParams()) = 0;

  /// Current protocol/version of `service` on this stack.  Throws
  /// std::invalid_argument when no mechanism manages `service`.
  [[nodiscard]] virtual UpdateStatus current_version(
      const std::string& service) const = 0;
};

/// Provides the UpdateApi on the "update" service.  Create it *before* the
/// mechanism modules of the stack: mechanisms find it by instance name when
/// they start and self-register.
class UpdateManagerModule final : public Module, public UpdateApi {
 public:
  static constexpr char kInstanceName[] = "update-manager";

  /// Trace markers (TraceKind::kCustom), emitted as
  /// "update-requested:<service>:<protocol>" on the initiating stack and
  /// "update-done:<service>:<protocol>:v=<n>" on every stack that finishes
  /// an update.  The scenario engine derives switch windows and per-update
  /// convergence latency from these, uniformly for every mechanism.
  static constexpr char kTraceRequested[] = "update-requested";
  static constexpr char kTraceDone[] = "update-done";

  static UpdateManagerModule* create(Stack& stack);

  /// The stack's manager, or nullptr when the stack was composed without
  /// one (mechanisms then run standalone, as before this API existed).
  [[nodiscard]] static UpdateManagerModule* of(Stack& stack);

  UpdateManagerModule(Stack& stack, std::string instance_name);

  // ---- UpdateApi ----------------------------------------------------------
  void request_update(const std::string& service, const std::string& protocol,
                      const ModuleParams& params = ModuleParams()) override;
  [[nodiscard]] UpdateStatus current_version(
      const std::string& service) const override;

  // ---- Mechanism side -----------------------------------------------------
  /// Called by mechanisms when they start/stop.  One mechanism per service;
  /// registering a second for the same service throws (two replacement
  /// machineries fighting over one layer is a composition bug).
  void register_mechanism(UpdateMechanism* mechanism);
  void unregister_mechanism(UpdateMechanism* mechanism);

  /// Called by a mechanism when the local stack finishes a switch; fans out
  /// to UpdateListeners and emits the generic completion trace marker.
  void notify_update_complete(UpdateMechanism& mechanism,
                              const std::string& protocol,
                              std::uint64_t version);

  // ---- Introspection ------------------------------------------------------
  [[nodiscard]] std::vector<std::string> managed_services() const;
  [[nodiscard]] std::uint64_t updates_completed() const {
    return updates_completed_;
  }

 private:
  [[nodiscard]] UpdateMechanism* mechanism_for(
      const std::string& service) const;

  UpcallRef<UpdateListener> up_;
  std::map<std::string, UpdateMechanism*> mechanisms_;
  std::uint64_t updates_completed_ = 0;
};

}  // namespace dpu
