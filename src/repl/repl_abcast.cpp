#include "repl/repl_abcast.hpp"

#include "util/log.hpp"

namespace dpu {

namespace {

/// Encodes ModuleParams into a change message so every stack creates the new
/// protocol with identical parameters.
void encode_params(BufWriter& w, const ModuleParams& params) {
  w.put_varint(params.entries().size());
  for (const auto& [key, value] : params.entries()) {
    w.put_string(key);
    w.put_string(value);
  }
}

ModuleParams decode_params(BufReader& r) {
  ModuleParams params;
  const std::uint64_t n = r.get_varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key = r.get_string();
    params.set(key, r.get_string());
  }
  return params;
}

}  // namespace

ReplAbcastModule* ReplAbcastModule::create(Stack& stack, Config config) {
  auto* m = stack.emplace_module<ReplAbcastModule>(
      stack, "repl-" + config.facade_service, config);
  stack.bind<AbcastApi>(config.facade_service, m, m);
  return m;
}

ReplAbcastModule::ReplAbcastModule(Stack& stack, std::string instance_name,
                                   Config config)
    : Module(stack, std::move(instance_name)),
      config_(config),
      inner_(stack.require<AbcastApi>(config_.inner_service)),
      up_(stack.upcalls<AbcastListener>(config_.facade_service)) {}

void ReplAbcastModule::start() {
  next_local_ = incarnation_seq_base(env().incarnation()) + 1;
  manager_ = UpdateManagerModule::of(stack());
  if (manager_ != nullptr) manager_->register_mechanism(this);
  // Intercept responses of whichever module is bound to the inner service.
  stack().listen<AbcastListener>(config_.inner_service, this, this);
  // Install the initial protocol (seqNumber 0).
  cur_protocol_ = config_.initial_protocol;
  ModuleParams params = config_.initial_params;
  params.set("instance", versioned_instance(cur_protocol_, seq_number_));
  cur_module_ = stack().create_module(cur_protocol_, config_.inner_service,
                                      params);
}

void ReplAbcastModule::stop() {
  if (manager_ != nullptr) manager_->unregister_mechanism(this);
  stack().unlisten<AbcastListener>(config_.inner_service, this);
  retire_timers_.clear();
}

std::string ReplAbcastModule::versioned_instance(const std::string& protocol,
                                                 std::uint64_t sn) const {
  return protocol + "@" + config_.inner_service + "#" + std::to_string(sn);
}

// ---------------------------------------------------------------------------
// Algorithm 1 lines 7-9: rABcast(m)
// ---------------------------------------------------------------------------

void ReplAbcastModule::abcast(Payload payload) {
  const MsgId id{env().node_id(), next_local_++};
  undelivered_.emplace(id, payload);  // line 8 (shares the buffer)
  BufWriter w(payload.size() + 24);
  w.put_u8(kNil);
  w.put_varint(seq_number_);
  id.encode(w);
  w.put_blob(payload);
  inner_abcast(w.take_payload());  // line 9: ABcast(nil, seqNumber, m)
}

// ---------------------------------------------------------------------------
// Algorithm 1 lines 5-6: changeABcast(prot)
// ---------------------------------------------------------------------------

void ReplAbcastModule::change_abcast(const std::string& protocol,
                                     const ModuleParams& params) {
  if (stack().library() == nullptr ||
      stack().library()->find(protocol) == nullptr) {
    throw std::logic_error("change_abcast: unknown protocol '" + protocol +
                           "'");
  }
  stack().trace(TraceKind::kCustom, config_.facade_service, instance_name(),
                std::string(kTraceChangeRequested) + ":" + protocol);
  BufWriter w(protocol.size() + 32);
  w.put_u8(kNewAbcast);
  w.put_varint(seq_number_);
  w.put_string(protocol);
  encode_params(w, params);
  inner_abcast(w.take_payload());  // line 6: ABcast(newABcast, seqNumber, prot)
}

void ReplAbcastModule::inner_abcast(Payload wrapped) {
  inner_.call([wrapped = std::move(wrapped)](AbcastApi& api) mutable {
    api.abcast(std::move(wrapped));
  });
}

// ---------------------------------------------------------------------------
// Algorithm 1 lines 10-21: Adeliver
// ---------------------------------------------------------------------------

void ReplAbcastModule::adeliver(NodeId /*sender*/, const Bytes& inner_payload) {
  try {
    BufReader r(inner_payload);
    const auto tag = static_cast<Tag>(r.get_u8());
    const std::uint64_t sn = r.get_varint();

    if (tag == kNewAbcast) {
      // Lines 10-16.  Note: Algorithm 1 deliberately has no sn test here —
      // change messages are processed in delivery order wherever they come
      // from, which keeps concurrent/chained replacements consistent (every
      // stack sees them in the same total order).
      (void)sn;
      std::string protocol = r.get_string();
      ModuleParams params = decode_params(r);
      r.expect_done();
      perform_switch(protocol, params);
      return;
    }
    if (tag != kNil) throw CodecError("unknown repl tag");

    // Lines 17-21.
    const MsgId id = MsgId::decode(r);
    Bytes payload = r.get_blob();
    r.expect_done();
    if (sn != seq_number_) {
      // Line 18: a message issued under an older protocol version; its
      // origin re-issues it under the new version (line 16), so dropping it
      // here preserves validity while preventing duplicate delivery.
      ++stale_discarded_;
      return;
    }
    if (id.origin == env().node_id()) {
      undelivered_.erase(id);  // lines 19-20
    }
    // Line 21: rAdeliver(m).
    up_.notify([&](AbcastListener& l) { l.adeliver(id.origin, payload); });
  } catch (const CodecError& e) {
    // Inner abcast is reliable: malformed wrappers indicate a bug, not loss.
    DPU_LOG(kError, "repl") << "s" << env().node_id()
                            << " malformed wrapped message: " << e.what();
  }
}

void ReplAbcastModule::perform_switch(const std::string& protocol,
                                      const ModuleParams& params) {
  ++seq_number_;  // line 11
  DPU_LOG(kInfo, "repl") << "s" << env().node_id() << " switching "
                         << config_.inner_service << " to " << protocol
                         << " (sn=" << seq_number_ << ")";

  // Line 12: unbind(curABcast).  The module stays in the stack and may still
  // deliver (stale) responses.
  Module* old_module = cur_module_;
  stack().unbind(config_.inner_service);

  // Lines 13-14: create_module(prot); bind.  Stack::create_module implements
  // lines 22-28 (recursive creation of providers for required services);
  // the factory binds the module to the inner service.
  ModuleParams create_params = params;
  create_params.set("instance", versioned_instance(protocol, seq_number_));
  cur_module_ =
      stack().create_module(protocol, config_.inner_service, create_params);
  cur_protocol_ = protocol;

  // Lines 15-16: re-issue all undelivered messages through the new protocol.
  for (const auto& [id, payload] : undelivered_) {
    BufWriter w(payload.size() + 24);
    w.put_u8(kNil);
    w.put_varint(seq_number_);
    id.encode(w);
    w.put_blob(payload);
    ++reissued_total_;
    inner_abcast(w.take_payload());
  }

  ++switches_completed_;
  stack().trace(TraceKind::kCustom, config_.facade_service, instance_name(),
                std::string(kTraceSwitchDone) + ":" + protocol + ":sn=" +
                    std::to_string(seq_number_));
  if (manager_ != nullptr) {
    manager_->notify_update_complete(*this, protocol, seq_number_);
  }

  // Optional extension: retire the old module once the switch has settled.
  if (old_module != nullptr && config_.retire_after > 0) {
    auto timer = std::make_unique<TimerSlot>(env());
    timer->schedule(config_.retire_after, [this, old_module]() {
      stack().destroy_module(old_module);
    });
    retire_timers_.push_back(std::move(timer));
  }
}

}  // namespace dpu
