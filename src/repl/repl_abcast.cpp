#include "repl/repl_abcast.hpp"

#include "util/log.hpp"

namespace dpu {

namespace {

ReplacementFacadeBase::FacadeConfig to_facade_config(
    const ReplAbcastConfig& config) {
  ReplacementFacadeBase::FacadeConfig f;
  f.facade_service = config.facade_service;
  f.inner_service = config.inner_service;
  f.initial_protocol = config.initial_protocol;
  f.initial_params = config.initial_params;
  f.retire_after = config.retire_after;
  // Abcast owes a recovered stack the full delivered history: the total
  // order makes every stack's log identical, so any peer's replay log is
  // authoritative.
  f.state_sync = ReplacementFacadeBase::FacadeConfig::StateSync::kLog;
  return f;
}

}  // namespace

ReplAbcastModule* ReplAbcastModule::create(Stack& stack, Config config) {
  auto* m = stack.emplace_module<ReplAbcastModule>(
      stack, "repl-" + config.facade_service, config);
  stack.bind<AbcastApi>(config.facade_service, m, m);
  return m;
}

ReplAbcastModule::ReplAbcastModule(Stack& stack, std::string instance_name,
                                   Config config)
    : ReplacementFacadeBase(stack, std::move(instance_name),
                            to_facade_config(config)),
      inner_(stack.require<AbcastApi>(fcfg_.inner_service)),
      up_(stack.upcalls<AbcastListener>(fcfg_.facade_service)) {}

void ReplAbcastModule::start() {
  // Intercept responses of whichever module is bound to the inner service.
  stack().listen<AbcastListener>(fcfg_.inner_service, this, this);
  facade_start();
}

void ReplAbcastModule::stop() {
  facade_stop();
  stack().unlisten<AbcastListener>(fcfg_.inner_service, this);
}

// ---------------------------------------------------------------------------
// Algorithm 1 lines 7-9: rABcast(m)
// ---------------------------------------------------------------------------

void ReplAbcastModule::abcast(Payload payload) {
  const MsgId id = next_msg_id();
  if (state_syncing()) {
    // No installed version to send under yet: track only.  The sync
    // finalize reissues the whole undelivered set wrapped with the synced
    // version number — sending now would queue a stale-sn wrapper on the
    // unbound inner slot.
    track_undelivered(id, std::move(payload), 0);
    return;
  }
  Payload wrapped = wrap_data(seq_number_, id, payload);
  track_undelivered(id, std::move(payload), 0);  // line 8 (shares the buffer)
  inner_abcast(std::move(wrapped));  // line 9: ABcast(nil, seqNumber, m)
}

void ReplAbcastModule::inner_abcast(Payload wrapped) {
  inner_.call([wrapped = std::move(wrapped)](AbcastApi& api) mutable {
    api.abcast(std::move(wrapped));
  });
}

// ---------------------------------------------------------------------------
// Algorithm 1 lines 10-21: Adeliver
// ---------------------------------------------------------------------------

void ReplAbcastModule::adeliver(NodeId /*sender*/, const Bytes& inner_payload) {
  try {
    Unwrapped m = unwrap(inner_payload);

    if (m.tag != kNil) {
      // Lines 10-16 (kNewProtocol), or a refresh switch coordinated for a
      // recovering peer (kNewProtocolSync).  Note: Algorithm 1 deliberately
      // has no sn test here — change messages are processed in delivery
      // order wherever they come from, which keeps concurrent/chained
      // replacements consistent (every stack sees them in the same total
      // order).
      perform_switch_from(m);
      return;
    }

    // Lines 17-21.
    if (m.sn != seq_number_) {
      // Line 18: a message issued under an older protocol version; its
      // origin re-issues it under the new version (line 16), so dropping it
      // here preserves validity while preventing duplicate delivery.
      ++stale_discarded_;
      return;
    }
    if (m.id.origin == env().node_id()) {
      settle_undelivered(m.id);  // lines 19-20
    }
    // Record before notifying, so a snapshot replays in delivery order.
    log_delivered(m.id, Payload::copy_of(
                            {m.payload.data(), m.payload.size()}));
    // Line 21: rAdeliver(m).
    up_.notify([&](AbcastListener& l) { l.adeliver(m.id.origin, m.payload); });
  } catch (const CodecError& e) {
    // Inner abcast is reliable: malformed wrappers indicate a bug, not loss.
    DPU_LOG(kError, "repl") << "s" << env().node_id()
                            << " malformed wrapped message: " << e.what();
  }
}

void ReplAbcastModule::replay_delivered(const MsgId& id,
                                        const Payload& payload) {
  const Bytes bytes = payload.to_bytes();
  up_.notify([&](AbcastListener& l) { l.adeliver(id.origin, bytes); });
}

}  // namespace dpu
