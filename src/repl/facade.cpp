#include "repl/facade.hpp"

#include <stdexcept>

#include "util/log.hpp"

namespace dpu {

void encode_module_params(BufWriter& w, const ModuleParams& params) {
  w.put_varint(params.entries().size());
  for (const auto& [key, value] : params.entries()) {
    w.put_string(key);
    w.put_string(value);
  }
}

ModuleParams decode_module_params(BufReader& r) {
  ModuleParams params;
  const std::uint64_t n = r.get_varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key = r.get_string();
    params.set(key, r.get_string());
  }
  return params;
}

// ---------------------------------------------------------------------------
// CrossVersionDedup
// ---------------------------------------------------------------------------

void CrossVersionDedup::reset(std::size_t world) {
  origins_.assign(world, Origin{});
}

bool CrossVersionDedup::mark_seen(const MsgId& id) {
  auto mark_in_window = [](EpochWindow& w, std::uint64_t seq) {
    if (seq < w.next) return false;
    if (seq > w.next) return w.ahead.insert(seq).second;
    ++w.next;
    while (!w.ahead.empty() && *w.ahead.begin() == w.next) {
      w.ahead.erase(w.ahead.begin());
      ++w.next;
    }
    return true;
  };
  if (id.origin >= origins_.size()) return false;  // malformed origin
  Origin& o = origins_[id.origin];
  const std::uint64_t epoch = seq_epoch(id.seq);
  if (epoch == o.epoch) return mark_in_window(o.cur, id.seq);
  if (epoch > o.epoch) {
    // The origin restarted: archive the dead incarnation's window (late
    // copies of its messages must still dedup and deliver) and open the new
    // epoch's.
    o.old_epochs.emplace(o.epoch, std::move(o.cur));
    o.epoch = epoch;
    o.cur = EpochWindow{(epoch << kIncarnationSeqShift) + 1, {}};
    return mark_in_window(o.cur, id.seq);
  }
  auto [it, inserted] = o.old_epochs.try_emplace(
      epoch, EpochWindow{(epoch << kIncarnationSeqShift) + 1, {}});
  (void)inserted;
  return mark_in_window(it->second, id.seq);
}

// ---------------------------------------------------------------------------
// ReplacementFacadeBase
// ---------------------------------------------------------------------------

ReplacementFacadeBase::ReplacementFacadeBase(Stack& stack,
                                             std::string instance_name,
                                             FacadeConfig config)
    : Module(stack, std::move(instance_name)), fcfg_(std::move(config)) {}

std::string ReplacementFacadeBase::inner_service_name(std::uint64_t sn) const {
  if (!fcfg_.versioned_inner) return fcfg_.inner_service;
  return fcfg_.inner_service + "#" + std::to_string(sn);
}

std::string ReplacementFacadeBase::versioned_instance(
    const std::string& protocol, std::uint64_t sn) const {
  return protocol + "@" + fcfg_.inner_service + "#" + std::to_string(sn);
}

void ReplacementFacadeBase::facade_start() {
  next_local_ = incarnation_seq_base(env().incarnation()) + 1;
  manager_ = UpdateManagerModule::of(stack());
  if (manager_ != nullptr) manager_->register_mechanism(this);
  // Install the initial protocol (seqNumber 0).
  cur_protocol_ = fcfg_.initial_protocol;
  ModuleParams params = fcfg_.initial_params;
  params.set("instance", versioned_instance(cur_protocol_, seq_number_));
  cur_module_ =
      stack().create_module(cur_protocol_, inner_service_name(), params);
  on_inner_installed(cur_module_, seq_number_);
}

void ReplacementFacadeBase::facade_stop() {
  if (manager_ != nullptr) manager_->unregister_mechanism(this);
  retire_timers_.clear();
}

void ReplacementFacadeBase::on_inner_installed(Module* /*created*/,
                                               std::uint64_t /*sn*/) {}

void ReplacementFacadeBase::on_inner_retired(Module* /*retired*/) {}

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

Payload ReplacementFacadeBase::wrap_data(std::uint64_t sn, const MsgId& id,
                                         const Payload& payload) {
  BufWriter w(payload.size() + 24);
  w.put_u8(kNil);
  w.put_varint(sn);
  id.encode(w);
  w.put_blob(payload);
  return w.take_payload();
}

Payload ReplacementFacadeBase::wrap_change(const std::string& protocol,
                                           const ModuleParams& params) const {
  BufWriter w(protocol.size() + 32);
  w.put_u8(kNewProtocol);
  w.put_varint(seq_number_);
  w.put_string(protocol);
  encode_module_params(w, params);
  return w.take_payload();
}

namespace {

ReplacementFacadeBase::Unwrapped unwrap_reader(
    BufReader& r, std::uint8_t raw_tag) {
  using Base = ReplacementFacadeBase;
  Base::Unwrapped out;
  const auto tag = static_cast<Base::Tag>(raw_tag);
  out.sn = r.get_varint();
  if (tag == Base::kNewProtocol) {
    out.tag = Base::kNewProtocol;
    out.protocol = r.get_string();
    out.params = decode_module_params(r);
    r.expect_done();
    return out;
  }
  if (tag != Base::kNil) throw CodecError("unknown repl tag");
  out.tag = Base::kNil;
  out.id = MsgId::decode(r);
  out.payload = r.get_blob();
  r.expect_done();
  return out;
}

}  // namespace

ReplacementFacadeBase::Unwrapped ReplacementFacadeBase::unwrap(
    const Bytes& wire) {
  BufReader r(wire);
  return unwrap_reader(r, r.get_u8());
}

ReplacementFacadeBase::Unwrapped ReplacementFacadeBase::unwrap(
    const Payload& wire) {
  BufReader r(wire);
  return unwrap_reader(r, r.get_u8());
}

ReplacementFacadeBase::UnwrappedData ReplacementFacadeBase::unwrap_data(
    const Payload& wire) {
  BufReader r(wire);
  if (static_cast<Tag>(r.get_u8()) != kNil) {
    throw CodecError("expected a data wrapper");
  }
  UnwrappedData out;
  out.sn = r.get_varint();
  out.id = MsgId::decode(r);
  out.payload = r.get_blob_payload();  // zero-copy slice of the wire buffer
  r.expect_done();
  return out;
}

// ---------------------------------------------------------------------------
// Algorithm 1 operations
// ---------------------------------------------------------------------------

void ReplacementFacadeBase::track_undelivered(const MsgId& id, Payload payload,
                                              std::uint64_t ctx) {
  undelivered_.emplace(id, UndeliveredEntry{std::move(payload), ctx});
}

bool ReplacementFacadeBase::settle_undelivered(const MsgId& id) {
  return undelivered_.erase(id) != 0;
}

void ReplacementFacadeBase::request_change(const std::string& protocol,
                                           const ModuleParams& params) {
  if (stack().library() == nullptr ||
      stack().library()->find(protocol) == nullptr) {
    throw std::logic_error("request_change: unknown protocol '" + protocol +
                           "'");
  }
  stack().trace(TraceKind::kCustom, fcfg_.facade_service, instance_name(),
                std::string(change_requested_marker()) + ":" + protocol);
  send_inner_change(wrap_change(protocol, params));  // line 6
}

void ReplacementFacadeBase::perform_switch(const std::string& protocol,
                                           const ModuleParams& params) {
  ++seq_number_;  // line 11
  DPU_LOG(kInfo, "repl") << "s" << env().node_id() << " switching "
                         << fcfg_.inner_service << " to " << protocol
                         << " (sn=" << seq_number_ << ")";

  // Line 12: unbind(cur).  The module stays in the stack and may still
  // deliver (stale) responses.  Versioned inner slots skip the unbind: each
  // version owns its own slot, and the old version's clients — none — would
  // be the only reason to clear it.
  Module* old_module = cur_module_;
  if (!fcfg_.versioned_inner) stack().unbind(fcfg_.inner_service);

  // Lines 13-14: create_module(prot); bind.  Stack::create_module implements
  // lines 22-28 (recursive creation of providers for required services); the
  // factory binds the module to the inner service.
  ModuleParams create_params = params;
  create_params.set("instance", versioned_instance(protocol, seq_number_));
  cur_module_ =
      stack().create_module(protocol, inner_service_name(), create_params);
  cur_protocol_ = protocol;
  on_inner_installed(cur_module_, seq_number_);

  // Lines 15-16: re-issue all undelivered messages through the new protocol.
  for (const auto& [id, entry] : undelivered_) {
    ++reissued_total_;
    send_inner_data(wrap_data(seq_number_, id, entry.payload), entry.ctx);
  }

  ++switches_completed_;
  stack().trace(TraceKind::kCustom, fcfg_.facade_service, instance_name(),
                std::string(switch_done_marker()) + ":" + protocol + ":sn=" +
                    std::to_string(seq_number_));
  if (manager_ != nullptr) {
    manager_->notify_update_complete(*this, protocol, seq_number_);
  }

  // Optional extension: retire the old module once the switch has settled.
  if (old_module != nullptr && fcfg_.retire_after > 0) {
    auto timer = std::make_unique<TimerSlot>(env());
    timer->schedule(fcfg_.retire_after, [this, old_module]() {
      on_inner_retired(old_module);
      stack().destroy_module(old_module);
    });
    retire_timers_.push_back(std::move(timer));
  }
}

}  // namespace dpu
