#include "repl/facade.hpp"

#include <algorithm>
#include <iterator>
#include <stdexcept>

#include "util/log.hpp"

namespace dpu {

void encode_module_params(BufWriter& w, const ModuleParams& params) {
  w.put_varint(params.entries().size());
  for (const auto& [key, value] : params.entries()) {
    w.put_string(key);
    w.put_string(value);
  }
}

ModuleParams decode_module_params(BufReader& r) {
  ModuleParams params;
  const std::uint64_t n = r.get_varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key = r.get_string();
    params.set(key, r.get_string());
  }
  return params;
}

// ---------------------------------------------------------------------------
// CrossVersionDedup
// ---------------------------------------------------------------------------

void CrossVersionDedup::reset(std::size_t world) {
  origins_.assign(world, Origin{});
}

bool CrossVersionDedup::mark_seen(const MsgId& id) {
  auto mark_in_window = [](EpochWindow& w, std::uint64_t seq) {
    if (seq < w.next) return false;
    if (seq == w.next) {
      ++w.next;
      // Absorb an ahead-run now contiguous with the watermark.
      auto run = w.ahead.begin();
      if (run != w.ahead.end() && run->first == w.next) {
        w.next = run->second;
        w.ahead.erase(run);
      }
      return true;
    }
    // seq beyond the watermark: place it in the [start, end) runs, coalescing
    // with a neighbouring run on either side.
    auto after = w.ahead.upper_bound(seq);  // first run starting past seq
    if (after != w.ahead.begin()) {
      auto before = std::prev(after);
      if (seq < before->second) return false;  // inside an existing run
      if (seq == before->second) {
        ++before->second;
        if (after != w.ahead.end() && after->first == before->second) {
          before->second = after->second;
          w.ahead.erase(after);
        }
        return true;
      }
    }
    if (after != w.ahead.end() && after->first == seq + 1) {
      // Prepends the following run (map keys are immutable: re-insert).
      const std::uint64_t end = after->second;
      w.ahead.erase(after);
      w.ahead.emplace(seq, end);
      return true;
    }
    w.ahead.emplace(seq, seq + 1);
    return true;
  };
  if (id.origin >= origins_.size()) return false;  // malformed origin
  Origin& o = origins_[id.origin];
  const std::uint64_t epoch = seq_epoch(id.seq);
  if (epoch == o.epoch) return mark_in_window(o.cur, id.seq);
  if (epoch > o.epoch) {
    // The origin restarted: archive the dead incarnation's window (late
    // copies of its messages must still dedup and deliver) and open the new
    // epoch's.  Compaction keeps the newest kMaxOldEpochs archives.
    o.old_epochs.emplace(o.epoch, std::move(o.cur));
    while (o.old_epochs.size() > kMaxOldEpochs) {
      o.old_epochs.erase(o.old_epochs.begin());
    }
    o.epoch = epoch;
    o.cur = EpochWindow{(epoch << kIncarnationSeqShift) + 1, {}};
    return mark_in_window(o.cur, id.seq);
  }
  // An epoch older than every archive was compacted away: suppress, the
  // safe direction (a many-restarts-stale relay re-offering ancient ids
  // must not re-deliver them).
  if (!o.old_epochs.empty() && epoch < o.old_epochs.begin()->first &&
      o.old_epochs.size() >= kMaxOldEpochs) {
    return false;
  }
  auto [it, inserted] = o.old_epochs.try_emplace(
      epoch, EpochWindow{(epoch << kIncarnationSeqShift) + 1, {}});
  (void)inserted;
  return mark_in_window(it->second, id.seq);
}

std::size_t CrossVersionDedup::entries() const {
  std::size_t n = 0;
  for (const Origin& o : origins_) {
    n += o.cur.ahead.size();
    for (const auto& [epoch, w] : o.old_epochs) n += w.ahead.size();
  }
  return n;
}

// ---------------------------------------------------------------------------
// ReplacementFacadeBase
// ---------------------------------------------------------------------------

ReplacementFacadeBase::ReplacementFacadeBase(Stack& stack,
                                             std::string instance_name,
                                             FacadeConfig config)
    : Module(stack, std::move(instance_name)), fcfg_(std::move(config)) {}

std::string ReplacementFacadeBase::inner_service_name(std::uint64_t sn) const {
  if (!fcfg_.versioned_inner) return fcfg_.inner_service;
  return fcfg_.inner_service + "#" + std::to_string(sn);
}

std::string ReplacementFacadeBase::versioned_instance(
    const std::string& protocol, std::uint64_t sn) const {
  return protocol + "@" + fcfg_.inner_service + "#" + std::to_string(sn);
}

void ReplacementFacadeBase::facade_start() {
  next_local_ = incarnation_seq_base(env().incarnation()) + 1;
  manager_ = UpdateManagerModule::of(stack());
  if (manager_ != nullptr) manager_->register_mechanism(this);

  if (fcfg_.state_sync != FacadeConfig::StateSync::kNone) {
    rp2p_ = stack().require<Rp2pApi>(kRp2pService);
    fd_ = stack().require<FdApi>(kFdService);
    state_channel_ = fnv1a64(instance_name() + "/state");
    rp2p_.call([this](Rp2pApi& api) {
      api.rp2p_bind_channel(state_channel_,
                            [this](NodeId src, const Payload& data) {
                              on_state_datagram(src, data);
                            });
    });
    state_channel_bound_ = true;
    if (env().incarnation() > 0 && env().world_size() > 1) {
      // Recovering or late-joining: do not re-install version 0 — ask a
      // peer for the facade's state (version metadata, and in kLog mode the
      // delivered history) and enter at the refresh switch it coordinates.
      syncing_ = true;
      sync_timer_ = std::make_unique<TimerSlot>(env());
      send_state_request(/*rotate=*/false);
      return;
    }
  }

  // Install the initial protocol (seqNumber 0).
  cur_protocol_ = fcfg_.initial_protocol;
  cur_params_ = fcfg_.initial_params;
  ModuleParams params = fcfg_.initial_params;
  params.set("instance", versioned_instance(cur_protocol_, seq_number_));
  cur_module_ =
      stack().create_module(cur_protocol_, inner_service_name(), params);
  on_inner_installed(cur_module_, seq_number_);
}

void ReplacementFacadeBase::facade_stop() {
  if (manager_ != nullptr) manager_->unregister_mechanism(this);
  retire_timers_.clear();
  if (sync_timer_ != nullptr) sync_timer_->cancel();
  if (state_channel_bound_) {
    state_channel_bound_ = false;
    // try_get, not call: during teardown the transport may already be gone,
    // and a queued release would trip the weak well-formedness check.
    if (Rp2pApi* api = rp2p_.try_get()) {
      api->rp2p_release_channel(state_channel_);
    }
  }
}

void ReplacementFacadeBase::on_inner_installed(Module* /*created*/,
                                               std::uint64_t /*sn*/) {}

void ReplacementFacadeBase::on_inner_retired(Module* /*retired*/) {}

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

Payload ReplacementFacadeBase::wrap_data(std::uint64_t sn, const MsgId& id,
                                         const Payload& payload) {
  BufWriter w(payload.size() + 24);
  w.put_u8(kNil);
  w.put_varint(sn);
  id.encode(w);
  w.put_blob(payload);
  return w.take_payload();
}

Payload ReplacementFacadeBase::wrap_change(const std::string& protocol,
                                           const ModuleParams& params) const {
  BufWriter w(protocol.size() + 32);
  w.put_u8(kNewProtocol);
  w.put_varint(seq_number_);
  w.put_string(protocol);
  encode_module_params(w, params);
  return w.take_payload();
}

namespace {

ReplacementFacadeBase::Unwrapped unwrap_reader(
    BufReader& r, std::uint8_t raw_tag) {
  using Base = ReplacementFacadeBase;
  Base::Unwrapped out;
  const auto tag = static_cast<Base::Tag>(raw_tag);
  out.sn = r.get_varint();
  if (tag == Base::kNewProtocol) {
    out.tag = Base::kNewProtocol;
    out.protocol = r.get_string();
    out.params = decode_module_params(r);
    r.expect_done();
    return out;
  }
  if (tag == Base::kNewProtocolSync) {
    out.tag = Base::kNewProtocolSync;
    out.protocol = r.get_string();
    out.params = decode_module_params(r);
    out.responder = r.get_u32();
    const std::uint64_t n = r.get_varint();
    for (std::uint64_t i = 0; i < n; ++i) {
      const NodeId node = r.get_u32();
      out.sync_epochs.emplace_back(node, r.get_varint());
    }
    r.expect_done();
    return out;
  }
  if (tag != Base::kNil) throw CodecError("unknown repl tag");
  out.tag = Base::kNil;
  out.id = MsgId::decode(r);
  out.payload = r.get_blob();
  r.expect_done();
  return out;
}

}  // namespace

ReplacementFacadeBase::Unwrapped ReplacementFacadeBase::unwrap(
    const Bytes& wire) {
  BufReader r(wire);
  return unwrap_reader(r, r.get_u8());
}

ReplacementFacadeBase::Unwrapped ReplacementFacadeBase::unwrap(
    const Payload& wire) {
  BufReader r(wire);
  return unwrap_reader(r, r.get_u8());
}

ReplacementFacadeBase::UnwrappedData ReplacementFacadeBase::unwrap_data(
    const Payload& wire) {
  BufReader r(wire);
  if (static_cast<Tag>(r.get_u8()) != kNil) {
    throw CodecError("expected a data wrapper");
  }
  UnwrappedData out;
  out.sn = r.get_varint();
  out.id = MsgId::decode(r);
  out.payload = r.get_blob_payload();  // zero-copy slice of the wire buffer
  r.expect_done();
  return out;
}

// ---------------------------------------------------------------------------
// Algorithm 1 operations
// ---------------------------------------------------------------------------

void ReplacementFacadeBase::track_undelivered(const MsgId& id, Payload payload,
                                              std::uint64_t ctx) {
  undelivered_.emplace(id, UndeliveredEntry{std::move(payload), ctx});
}

bool ReplacementFacadeBase::settle_undelivered(const MsgId& id) {
  return undelivered_.erase(id) != 0;
}

void ReplacementFacadeBase::request_change(const std::string& protocol,
                                           const ModuleParams& params) {
  if (stack().library() == nullptr ||
      stack().library()->find(protocol) == nullptr) {
    throw std::logic_error("request_change: unknown protocol '" + protocol +
                           "'");
  }
  stack().trace(TraceKind::kCustom, fcfg_.facade_service, instance_name(),
                std::string(change_requested_marker()) + ":" + protocol);
  if (syncing_) {
    // No version to send under yet: hold the change until the snapshot
    // finalizes (it is re-wrapped with the synced version number there).
    deferred_changes_.emplace_back(protocol, params);
    return;
  }
  send_inner_change(wrap_change(protocol, params));  // line 6
}

void ReplacementFacadeBase::perform_switch(const std::string& protocol,
                                           const ModuleParams& params) {
  perform_switch_impl(protocol, params, nullptr);
}

void ReplacementFacadeBase::perform_switch_from(const Unwrapped& u) {
  if (u.tag == kNewProtocolSync) {
    if (u.sn != seq_number_) {
      // Stale refresh: another switch was ordered between this refresh's
      // launch and its delivery.  A change sent through an instance that is
      // no longer current may ride a channel a recovered stack never bound
      // (it entered at a later version), so performing it would fork the
      // instance sequence between old members and the recovered stack.  The
      // change order is the same on every stack that delivers it, so they
      // all sit at the same seq_number_ here and the drop is uniform.  Any
      // requester this refresh was launched for is either already served
      // (it cancels on finalize) or still retrying; the responder relaunches
      // under the current version for those still waiting.
      ++stale_syncs_dropped_;
      DPU_LOG(kInfo, "repl") << "s" << env().node_id()
                             << " dropping stale refresh switch (its sn "
                             << u.sn << " != " << seq_number_ << ")";
      if (u.responder == env().node_id()) {
        // Requesters in the dropped batch were never served: requeue them
        // (dedup by node, keeping the highest epoch) and relaunch once.
        refresh_inflight_ = false;
        for (StateRequest& req : inflight_requests_) {
          bool found = false;
          for (StateRequest& p : pending_requests_) {
            if (p.node == req.node) {
              p.epoch = std::max(p.epoch, req.epoch);
              found = true;
            }
          }
          if (!found) pending_requests_.push_back(req);
        }
        inflight_requests_.clear();
        launch_refresh_switch();
      }
      return;
    }
    perform_switch_impl(u.protocol, u.params, &u);
  } else {
    perform_switch_impl(u.protocol, u.params, nullptr);
  }
}

void ReplacementFacadeBase::perform_switch_impl(const std::string& protocol,
                                                const ModuleParams& params,
                                                const Unwrapped* sync) {
  const bool refresh = sync != nullptr;

  // Epoch barrier (refresh switches): note the requesters' incarnation
  // epochs to rp2p at this stack's switch point, so everything sent to the
  // recovered stacks from here on rides their new epochs — including the
  // new inner instance's traffic, which rp2p buffers for them until they
  // bind it.
  if (refresh && rp2p_.valid()) {
    for (const auto& [node, epoch] : sync->sync_epochs) {
      if (node == env().node_id()) continue;
      rp2p_.call([node = node, epoch = epoch](Rp2pApi& api) {
        api.rp2p_note_peer_epoch(node, epoch);
      });
    }
  }

  // Snapshot cut: the log as of *before* the switch.  Creating the new
  // inner module below synchronously flushes rp2p's pending buffers for its
  // channels, so deliveries may append to the log mid-switch; those are
  // post-cut history a requester receives through the new instance itself.
  const std::size_t cut = replay_log_.size();

  ++seq_number_;  // line 11
  DPU_LOG(kInfo, "repl") << "s" << env().node_id() << " switching "
                         << fcfg_.inner_service << " to " << protocol
                         << " (sn=" << seq_number_
                         << (refresh ? ", refresh)" : ")");

  // Line 12: unbind(cur).  The module stays in the stack and may still
  // deliver (stale) responses.  Versioned inner slots skip the unbind: each
  // version owns its own slot, and the old version's clients — none — would
  // be the only reason to clear it.
  Module* old_module = cur_module_;
  if (!fcfg_.versioned_inner) stack().unbind(fcfg_.inner_service);

  // Lines 13-14: create_module(prot); bind.  Stack::create_module implements
  // lines 22-28 (recursive creation of providers for required services); the
  // factory binds the module to the inner service.
  ModuleParams create_params = params;
  create_params.set("instance", versioned_instance(protocol, seq_number_));
  cur_module_ =
      stack().create_module(protocol, inner_service_name(), create_params);
  cur_protocol_ = protocol;
  cur_params_ = params;
  on_inner_installed(cur_module_, seq_number_);

  if (fcfg_.state_sync == FacadeConfig::StateSync::kLog) {
    LogEntry sw;
    sw.kind = kLogSwitch;
    sw.sn = seq_number_;
    sw.protocol = protocol;
    push_log(std::move(sw));
  }

  // Lines 15-16: re-issue all undelivered messages through the new protocol.
  for (const auto& [id, entry] : undelivered_) {
    ++reissued_total_;
    send_inner_data(wrap_data(seq_number_, id, entry.payload), entry.ctx);
  }

  if (!refresh) {
    ++switches_completed_;
    stack().trace(TraceKind::kCustom, fcfg_.facade_service, instance_name(),
                  std::string(switch_done_marker()) + ":" + protocol + ":sn=" +
                      std::to_string(seq_number_));
    if (manager_ != nullptr) {
      manager_->notify_update_complete(*this, protocol, seq_number_);
    }
  } else {
    // A refresh switch is bookkeeping, not an update: no done-marker, no
    // update outcome (benches and the scenario engine must not count it).
    ++refresh_switches_;
    if (sync->responder == env().node_id()) {
      for (const auto& req : inflight_requests_) {
        send_snapshot(req.node, cut);
      }
      inflight_requests_.clear();
      refresh_inflight_ = false;
      launch_refresh_switch();  // more requests may have queued meanwhile
    }
  }

  // Optional extension: retire the old module once the switch has settled.
  if (old_module != nullptr && fcfg_.retire_after > 0) {
    auto timer = std::make_unique<TimerSlot>(env());
    timer->schedule(fcfg_.retire_after, [this, old_module]() {
      on_inner_retired(old_module);
      stack().destroy_module(old_module);
    });
    retire_timers_.push_back(std::move(timer));
  }
}

// ---------------------------------------------------------------------------
// State transfer (recovery / late join)
// ---------------------------------------------------------------------------

void ReplacementFacadeBase::replay_delivered(const MsgId& /*id*/,
                                             const Payload& /*payload*/) {}

void ReplacementFacadeBase::on_state_sync_complete() {}

void ReplacementFacadeBase::push_log(LogEntry e) {
  if (fcfg_.state_sync != FacadeConfig::StateSync::kLog) return;
  replay_log_.push_back(std::move(e));
  while (replay_log_.size() > fcfg_.replay_log_cap) {
    replay_log_.pop_front();
    ++log_trimmed_;
  }
}

void ReplacementFacadeBase::log_delivered(const MsgId& id,
                                          const Payload& payload) {
  if (fcfg_.state_sync != FacadeConfig::StateSync::kLog) return;
  LogEntry e;
  e.kind = kLogData;
  e.id = id;
  e.payload = payload;
  push_log(std::move(e));
}

NodeId ReplacementFacadeBase::pick_responder() const {
  const auto world = static_cast<NodeId>(env().world_size());
  const NodeId self = env().node_id();
  const FdApi* fd = fd_.try_get();
  std::vector<NodeId> candidates;
  for (NodeId n = 0; n < world; ++n) {
    if (n == self) continue;
    if (fd != nullptr && fd->fd_suspects(n)) continue;
    candidates.push_back(n);
  }
  if (candidates.empty()) {
    // Everyone suspected (or no detector yet): try all peers round-robin.
    for (NodeId n = 0; n < world; ++n) {
      if (n != self) candidates.push_back(n);
    }
  }
  if (candidates.empty()) return kNoNode;
  return candidates[sync_attempt_ % candidates.size()];
}

void ReplacementFacadeBase::send_state_request(bool rotate) {
  if (!syncing_) return;
  if (rotate) {
    // A transfer that made progress since the last tick is slow, not dead:
    // keep collecting instead of discarding a half-received snapshot.
    if (sync_header_seen_ && sync_entries_.size() > sync_progress_mark_) {
      sync_progress_mark_ = sync_entries_.size();
      sync_timer_->schedule(fcfg_.sync_retry,
                            [this]() { send_state_request(/*rotate=*/true); });
      return;
    }
    ++sync_attempt_;
    ++sync_retries_;
  }
  // Drop any partial snapshot from the previous responder.
  sync_header_seen_ = false;
  sync_source_ = kNoNode;
  sync_progress_mark_ = 0;
  sync_entries_.clear();
  sync_responder_ = pick_responder();
  if (sync_responder_ != kNoNode) {
    BufWriter w(8);
    w.put_u8(kStateRequest);
    w.put_varint(env().incarnation());
    rp2p_.call([this, p = w.take_payload()](Rp2pApi& api) mutable {
      api.rp2p_send(sync_responder_, state_channel_, std::move(p));
    });
  }
  sync_timer_->schedule(fcfg_.sync_retry,
                        [this]() { send_state_request(/*rotate=*/true); });
}

void ReplacementFacadeBase::on_state_datagram(NodeId src, const Payload& wire) {
  BufReader r(wire);
  switch (static_cast<StateTag>(r.get_u8())) {
    case kStateRequest: {
      const std::uint64_t epoch = r.get_varint();
      r.expect_done();
      handle_state_request(src, epoch);
      break;
    }
    case kStateDecline:
      r.expect_done();
      // The responder cannot serve (it is syncing itself): rotate now
      // instead of waiting out the retry timer.
      if (syncing_ && src == sync_responder_) {
        send_state_request(/*rotate=*/true);
      }
      break;
    case kStateHeader:
      handle_state_header(src, r);
      break;
    case kStateChunk:
      handle_state_chunk(src, r);
      break;
    case kStateCancel: {
      const std::uint64_t epoch = r.get_varint();
      r.expect_done();
      handle_state_cancel(src, epoch);
      break;
    }
    default:
      throw CodecError("unknown state-channel tag");
  }
}

void ReplacementFacadeBase::handle_state_request(NodeId src,
                                                 std::uint64_t epoch) {
  if (syncing_) {
    BufWriter w(2);
    w.put_u8(kStateDecline);
    rp2p_.call([this, src, p = w.take_payload()](Rp2pApi& api) mutable {
      api.rp2p_send(src, state_channel_, std::move(p));
    });
    return;
  }
  // Dedup by node, keeping the highest epoch: a re-request after losing a
  // responder supersedes the stale entry.
  bool found = false;
  for (StateRequest& req : pending_requests_) {
    if (req.node == src) {
      req.epoch = std::max(req.epoch, epoch);
      found = true;
    }
  }
  if (!found) pending_requests_.push_back(StateRequest{src, epoch});
  launch_refresh_switch();
}

void ReplacementFacadeBase::handle_state_cancel(NodeId src,
                                                std::uint64_t epoch) {
  // The requester finalized from someone's snapshot: drop its outstanding
  // requests so they spawn no further refresh switches.  rp2p's per-sender
  // FIFO orders the cancel after every request the requester sent before
  // finalizing; a *later* epoch (it crashed and recovered again) is a new
  // request cycle and survives the purge.
  const auto purge = [&](std::vector<StateRequest>& reqs) {
    std::erase_if(reqs, [&](const StateRequest& req) {
      return req.node == src && req.epoch <= epoch;
    });
  };
  purge(pending_requests_);
  purge(inflight_requests_);
}

void ReplacementFacadeBase::launch_refresh_switch() {
  if (refresh_inflight_ || pending_requests_.empty()) return;
  refresh_inflight_ = true;
  inflight_requests_ = std::move(pending_requests_);
  pending_requests_.clear();
  // Coordinate the refresh through the replaced service, like any change
  // (Algorithm 1 line 6): the delivery point is the cut every stack
  // snapshots and epoch-notes at.
  send_inner_change(wrap_change_sync());
}

Payload ReplacementFacadeBase::wrap_change_sync() const {
  BufWriter w(cur_protocol_.size() + 48);
  w.put_u8(kNewProtocolSync);
  w.put_varint(seq_number_);
  w.put_string(cur_protocol_);
  encode_module_params(w, cur_params_);
  w.put_u32(env().node_id());
  w.put_varint(inflight_requests_.size());
  for (const StateRequest& req : inflight_requests_) {
    w.put_u32(req.node);
    w.put_varint(req.epoch);
  }
  return w.take_payload();
}

void ReplacementFacadeBase::encode_log_entry(BufWriter& w, const LogEntry& e) {
  w.put_u8(e.kind);
  if (e.kind == kLogData) {
    e.id.encode(w);
    w.put_blob(e.payload);
  } else {
    w.put_varint(e.sn);
    w.put_string(e.protocol);
  }
}

ReplacementFacadeBase::LogEntry ReplacementFacadeBase::decode_log_entry(
    BufReader& r) {
  LogEntry e;
  e.kind = r.get_u8();
  if (e.kind == kLogData) {
    e.id = MsgId::decode(r);
    e.payload = r.get_blob_payload();
  } else if (e.kind == kLogSwitch) {
    e.sn = r.get_varint();
    e.protocol = r.get_string();
  } else {
    throw CodecError("unknown replay-log entry kind");
  }
  return e;
}

void ReplacementFacadeBase::send_snapshot(NodeId dst, std::size_t cut) {
  ++snapshots_served_;
  const std::size_t count =
      fcfg_.state_sync == FacadeConfig::StateSync::kLog ? cut : 0;
  {
    BufWriter w(cur_protocol_.size() + 64);
    w.put_u8(kStateHeader);
    w.put_varint(seq_number_);
    w.put_string(cur_protocol_);
    encode_module_params(w, cur_params_);
    w.put_varint(count);
    w.put_varint(log_trimmed_);
    rp2p_.call([this, dst, p = w.take_payload()](Rp2pApi& api) mutable {
      api.rp2p_send(dst, state_channel_, std::move(p));
    });
  }
  // Entries ride in ~16 KB chunks (the rt engine's UDP transport caps
  // datagrams well under 64 KB); rp2p's per-sender FIFO keeps header and
  // chunks in order.
  constexpr std::size_t kChunkBytes = 16 * 1024;
  std::size_t i = 0;
  while (i < count) {
    std::size_t n = 0;
    std::size_t bytes = 0;
    while (i + n < count && (n == 0 || bytes < kChunkBytes)) {
      const LogEntry& e = replay_log_[i + n];
      bytes += 16 + (e.kind == kLogData ? e.payload.size() : e.protocol.size());
      ++n;
    }
    BufWriter w(bytes + 16);
    w.put_u8(kStateChunk);
    w.put_varint(n);
    for (std::size_t k = 0; k < n; ++k) {
      encode_log_entry(w, replay_log_[i + k]);
    }
    i += n;
    rp2p_.call([this, dst, p = w.take_payload()](Rp2pApi& api) mutable {
      api.rp2p_send(dst, state_channel_, std::move(p));
    });
  }
}

void ReplacementFacadeBase::handle_state_header(NodeId src, BufReader& r) {
  // Accept from ANY peer we asked, not only the latest: a retry may have
  // rotated past a responder whose refresh switch was merely slow to order,
  // and its snapshot is the *earliest* refresh launched for us — entering
  // there means this stack creates every inner instance the group binds
  // from that point on (the operationability contract).  Later snapshots
  // arriving after the finalize are ignored (`syncing_` is false by then).
  if (!syncing_) return;
  if (sync_header_seen_ && src != sync_source_) return;  // mid-transfer
  sync_source_ = src;
  sync_sn_ = r.get_varint();
  sync_protocol_ = r.get_string();
  sync_params_ = decode_module_params(r);
  sync_expected_ = r.get_varint();
  sync_trimmed_ = r.get_varint();
  r.expect_done();
  sync_header_seen_ = true;
  sync_entries_.clear();
  if (sync_entries_.size() >= sync_expected_) finalize_state_sync();
}

void ReplacementFacadeBase::handle_state_chunk(NodeId src, BufReader& r) {
  if (!syncing_ || !sync_header_seen_ || src != sync_source_) return;
  const std::uint64_t n = r.get_varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    sync_entries_.push_back(decode_log_entry(r));
  }
  r.expect_done();
  if (sync_entries_.size() >= sync_expected_) finalize_state_sync();
}

void ReplacementFacadeBase::finalize_state_sync() {
  syncing_ = false;
  sync_timer_->cancel();

  // Tell every peer (rotation may have spread requests across several) that
  // this sync is over, so requests still queued or inflight there stop
  // spawning refresh switches on our behalf.
  for (NodeId n = 0; n < static_cast<NodeId>(env().world_size()); ++n) {
    if (n == env().node_id()) continue;
    BufWriter w(8);
    w.put_u8(kStateCancel);
    w.put_varint(env().incarnation());
    rp2p_.call([this, n, p = w.take_payload()](Rp2pApi& api) mutable {
      api.rp2p_send(n, state_channel_, std::move(p));
    });
  }

  seq_number_ = sync_sn_;
  cur_protocol_ = sync_protocol_;
  cur_params_ = sync_params_;
  log_trimmed_ = sync_trimmed_;

  // Re-deliver the snapshot history locally (the kLog audit contract: a
  // recovered stack's delivery sequence restarts from the beginning of
  // history) and seed the replay log with it, so this stack can serve later
  // requesters with the same full history.
  for (LogEntry& e : sync_entries_) {
    if (e.kind == kLogData) {
      ++replayed_from_snapshot_;
      replay_delivered(e.id, e.payload);
    }
    push_log(std::move(e));
  }
  sync_entries_.clear();
  sync_entries_.shrink_to_fit();
  if (fcfg_.state_sync == FacadeConfig::StateSync::kLog) {
    // The refresh switch every peer performed, in log form.
    LogEntry sw;
    sw.kind = kLogSwitch;
    sw.sn = seq_number_;
    sw.protocol = cur_protocol_;
    push_log(std::move(sw));
  }

  DPU_LOG(kInfo, "repl") << "s" << env().node_id() << " state sync of "
                         << fcfg_.facade_service << " done: sn=" << seq_number_
                         << " protocol=" << cur_protocol_
                         << " replayed=" << replayed_from_snapshot_;

  // Install the synced version's inner instance.  rp2p buffered its channel
  // traffic for us since the refresh switch; binding flushes it, so the
  // live tail follows the replay seamlessly.
  ModuleParams create_params = cur_params_;
  create_params.set("instance", versioned_instance(cur_protocol_, seq_number_));
  cur_module_ = stack().create_module(cur_protocol_, inner_service_name(),
                                      create_params);
  on_inner_installed(cur_module_, seq_number_);

  on_state_sync_complete();

  // Reissue everything the application handed us while we were syncing
  // (tracked, never transmitted — there was no version to send under).
  for (const auto& [id, entry] : undelivered_) {
    ++reissued_total_;
    send_inner_data(wrap_data(seq_number_, id, entry.payload), entry.ctx);
  }

  stack().trace(TraceKind::kCustom, fcfg_.facade_service, instance_name(),
                std::string(kTraceStateSyncDone) + ":" + cur_protocol_ +
                    ":sn=" + std::to_string(seq_number_) +
                    ":replayed=" + std::to_string(replayed_from_snapshot_));

  // Installing the synced version IS this stack's completion of whatever
  // update produced it: emit the same done-marker/manager notification as
  // a locally performed switch, so a pre-crash update's convergence window
  // stretches to cover the recovery (completions with no matching request
  // — a plain refresh — are dropped by the outcome extractor).
  stack().trace(TraceKind::kCustom, fcfg_.facade_service, instance_name(),
                std::string(switch_done_marker()) + ":" + cur_protocol_ +
                    ":sn=" + std::to_string(seq_number_));
  if (manager_ != nullptr) {
    manager_->notify_update_complete(*this, cur_protocol_, seq_number_);
  }

  // Changes requested while syncing, re-wrapped under the synced version.
  auto deferred = std::move(deferred_changes_);
  deferred_changes_.clear();
  for (const auto& [protocol, params] : deferred) {
    send_inner_change(wrap_change(protocol, params));
  }
}

}  // namespace dpu
