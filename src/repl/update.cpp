#include "repl/update.hpp"

#include <stdexcept>

#include "util/log.hpp"

namespace dpu {

UpdateManagerModule* UpdateManagerModule::create(Stack& stack) {
  auto* m = stack.emplace_module<UpdateManagerModule>(stack, kInstanceName);
  stack.bind<UpdateApi>(kUpdateService, m, m);
  return m;
}

UpdateManagerModule* UpdateManagerModule::of(Stack& stack) {
  return dynamic_cast<UpdateManagerModule*>(stack.find_module(kInstanceName));
}

UpdateManagerModule::UpdateManagerModule(Stack& stack,
                                         std::string instance_name)
    : Module(stack, std::move(instance_name)),
      up_(stack.upcalls<UpdateListener>(kUpdateService)) {}

// ---------------------------------------------------------------------------
// UpdateApi
// ---------------------------------------------------------------------------

void UpdateManagerModule::request_update(const std::string& service,
                                         const std::string& protocol,
                                         const ModuleParams& params) {
  const ProtocolRegistry* registry = stack().library();
  if (registry == nullptr) {
    throw std::invalid_argument(
        "request_update: stack has no protocol registry");
  }
  const ProtocolInfo* info = registry->find(protocol);
  if (info == nullptr) {
    throw std::invalid_argument("request_update: unknown library '" +
                                protocol + "'");
  }
  if (!registry->replaceable(service)) {
    throw std::invalid_argument("request_update: service '" + service +
                                "' is not declared replaceable");
  }
  if (info->default_service != service) {
    throw std::invalid_argument("request_update: library '" + protocol +
                                "' provides service '" +
                                info->default_service + "', not '" + service +
                                "'");
  }
  UpdateMechanism* mechanism = mechanism_for(service);
  if (mechanism == nullptr) {
    throw std::invalid_argument(
        "request_update: no update mechanism manages service '" + service +
        "' on this stack");
  }
  stack().trace(TraceKind::kCustom, kUpdateService, instance_name(),
                std::string(kTraceRequested) + ":" + service + ":" + protocol);
  mechanism->request_update(protocol, params);
}

UpdateStatus UpdateManagerModule::current_version(
    const std::string& service) const {
  UpdateMechanism* mechanism = mechanism_for(service);
  if (mechanism == nullptr) {
    throw std::invalid_argument(
        "current_version: no update mechanism manages service '" + service +
        "' on this stack");
  }
  return mechanism->update_status();
}

// ---------------------------------------------------------------------------
// Mechanism side
// ---------------------------------------------------------------------------

void UpdateManagerModule::register_mechanism(UpdateMechanism* mechanism) {
  const std::string& service = mechanism->update_service();
  auto [it, inserted] = mechanisms_.emplace(service, mechanism);
  (void)it;
  if (!inserted) {
    throw std::logic_error("update: two mechanisms registered for service '" +
                           service + "'");
  }
}

void UpdateManagerModule::unregister_mechanism(UpdateMechanism* mechanism) {
  auto it = mechanisms_.find(mechanism->update_service());
  if (it != mechanisms_.end() && it->second == mechanism) {
    mechanisms_.erase(it);
  }
}

void UpdateManagerModule::notify_update_complete(UpdateMechanism& mechanism,
                                                 const std::string& protocol,
                                                 std::uint64_t version) {
  ++updates_completed_;
  UpdateEvent event;
  event.service = mechanism.update_service();
  event.protocol = protocol;
  event.mechanism = mechanism.update_mechanism_name();
  event.version = version;
  event.at = env().now();
  stack().trace(TraceKind::kCustom, kUpdateService, instance_name(),
                std::string(kTraceDone) + ":" + event.service + ":" +
                    protocol + ":v=" + std::to_string(version));
  up_.notify([&](UpdateListener& l) { l.on_update_complete(event); });
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

std::vector<std::string> UpdateManagerModule::managed_services() const {
  std::vector<std::string> out;
  out.reserve(mechanisms_.size());
  for (const auto& [service, mechanism] : mechanisms_) {
    (void)mechanism;
    out.push_back(service);
  }
  return out;
}

UpdateMechanism* UpdateManagerModule::mechanism_for(
    const std::string& service) const {
  auto it = mechanisms_.find(service);
  return it == mechanisms_.end() ? nullptr : it->second;
}

}  // namespace dpu
