#include "repl/repl_consensus.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace dpu {

namespace {

void encode_params(BufWriter& w, const ModuleParams& params) {
  w.put_varint(params.entries().size());
  for (const auto& [key, value] : params.entries()) {
    w.put_string(key);
    w.put_string(value);
  }
}

ModuleParams decode_params(BufReader& r) {
  ModuleParams params;
  const std::uint64_t n = r.get_varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key = r.get_string();
    params.set(key, r.get_string());
  }
  return params;
}

/// Wrapper layout: u8 has_vote | [u32 target_version, string protocol,
/// params] | blob client_value.
struct Wrapped {
  bool has_vote = false;
  std::uint32_t target_version = 0;
  std::string protocol;
  ModuleParams params;
  Bytes client_value;

  [[nodiscard]] static Bytes encode_plain(const Bytes& client_value) {
    BufWriter w(client_value.size() + 4);
    w.put_bool(false);
    w.put_blob(client_value);
    return w.take();
  }

  [[nodiscard]] static Bytes encode_vote(std::uint32_t target,
                                         const std::string& protocol,
                                         const ModuleParams& params,
                                         const Bytes& client_value) {
    BufWriter w(client_value.size() + protocol.size() + 32);
    w.put_bool(true);
    w.put_u32(target);
    w.put_string(protocol);
    encode_params(w, params);
    w.put_blob(client_value);
    return w.take();
  }

  [[nodiscard]] static Wrapped decode(const Bytes& data) {
    BufReader r(data);
    Wrapped out;
    out.has_vote = r.get_bool();
    if (out.has_vote) {
      out.target_version = r.get_u32();
      out.protocol = r.get_string();
      out.params = decode_params(r);
    }
    out.client_value = r.get_blob();
    r.expect_done();
    return out;
  }
};

}  // namespace

ReplConsensusModule* ReplConsensusModule::create(Stack& stack, Config config) {
  auto* m = stack.emplace_module<ReplConsensusModule>(
      stack, "repl-" + config.facade_service, config);
  stack.bind<ConsensusApi>(config.facade_service, m, m);
  return m;
}

ReplConsensusModule::ReplConsensusModule(Stack& stack,
                                         std::string instance_name,
                                         Config config)
    : Module(stack, std::move(instance_name)),
      config_(config),
      rbcast_(stack.require<RbcastApi>(kRbcastService)),
      announce_channel_(fnv1a64(Module::instance_name() + "/switch")) {}

void ReplConsensusModule::start() {
  manager_ = UpdateManagerModule::of(stack());
  if (manager_ != nullptr) manager_->register_mechanism(this);
  rbcast_.call([this](RbcastApi& rbcast) {
    rbcast.rbcast_bind_channel(announce_channel_,
                               [this](NodeId from, const Payload& data) {
                                 on_announce(from, data);
                               });
  });
  create_version(0, config_.initial_protocol, config_.initial_params);
}

void ReplConsensusModule::stop() {
  if (manager_ != nullptr) manager_->unregister_mechanism(this);
  rbcast_.call([this](RbcastApi& rbcast) {
    rbcast.rbcast_release_channel(announce_channel_);
  });
}

UpdateStatus ReplConsensusModule::update_status() const {
  // The slowest routed stream defines the stack-wide version; with no
  // routed streams the latest announced version rules (nothing is pinned to
  // an older protocol).
  std::uint32_t version = static_cast<std::uint32_t>(versions_.size()) - 1;
  for (const auto& [stream, st] : streams_) {
    (void)stream;
    if (st.routed) version = std::min(version, st.auth);
  }
  return UpdateStatus{versions_[version].protocol, version};
}

std::uint32_t ReplConsensusModule::stream_version(StreamId stream) const {
  auto it = streams_.find(stream);
  return it == streams_.end() ? 0 : it->second.auth;
}

// ---------------------------------------------------------------------------
// Switch announcement
// ---------------------------------------------------------------------------

void ReplConsensusModule::change_consensus(const std::string& protocol,
                                           const ModuleParams& params) {
  if (stack().library() == nullptr ||
      stack().library()->find(protocol) == nullptr) {
    throw std::logic_error("change_consensus: unknown protocol '" + protocol +
                           "'");
  }
  stack().trace(TraceKind::kCustom, config_.facade_service, instance_name(),
                std::string(kTraceChangeRequested) + ":" + protocol);
  BufWriter w(protocol.size() + 32);
  w.put_u32(static_cast<std::uint32_t>(versions_.size()));
  w.put_string(protocol);
  encode_params(w, params);
  rbcast_.call([this, bytes = w.take_payload()](RbcastApi& rbcast) mutable {
    rbcast.rbcast(announce_channel_, std::move(bytes));
  });
}

void ReplConsensusModule::on_announce(NodeId from, const Payload& data) {
  (void)from;
  try {
    BufReader r(data);
    const std::uint32_t version = r.get_u32();
    std::string protocol = r.get_string();
    ModuleParams params = decode_params(r);
    r.expect_done();
    create_version(version, protocol, params);
  } catch (const CodecError& e) {
    DPU_LOG(kWarn, "repl-cons") << "s" << env().node_id()
                                << " malformed announce: " << e.what();
  }
}

void ReplConsensusModule::create_version(std::uint32_t version,
                                         const std::string& protocol,
                                         const ModuleParams& params) {
  if (version < versions_.size()) return;  // duplicate announcement
  if (version > versions_.size()) {
    // Single-switch-at-a-time discipline violated upstream; refuse rather
    // than create a gap.
    DPU_LOG(kError, "repl-cons") << "s" << env().node_id()
                                 << " out-of-order version " << version;
    return;
  }
  const std::string service =
      config_.inner_prefix + "#" + std::to_string(version);
  ModuleParams create_params = params;
  create_params.set("instance",
                    protocol + "@cons#" + std::to_string(version));
  Module* m = stack().create_module(protocol, service, create_params);
  auto* api = dynamic_cast<ConsensusApi*>(m);
  assert(api != nullptr);
  versions_.push_back(VersionInfo{protocol, api});
  if (version > 0) {
    // Version 0 is the initial composition, not a switch.  Creation of the
    // new inner module is the per-stack completion point (streams migrate
    // lazily at their next decided instance, but from here on this stack
    // routes fresh proposals through the new protocol).
    stack().trace(TraceKind::kCustom, config_.facade_service, instance_name(),
                  std::string(kTraceVersionCreated) + ":" + protocol + ":v=" +
                      std::to_string(version));
    if (manager_ != nullptr) {
      manager_->notify_update_complete(*this, protocol, version);
    }
  }
  DPU_LOG(kInfo, "repl-cons") << "s" << env().node_id()
                              << " consensus version " << version << " = "
                              << protocol;
  // Route decisions of every known stream from the new module too.
  for (auto& [stream, st] : streams_) {
    if (st.routed) {
      bind_stream_on_version(stream,
                             static_cast<std::uint32_t>(versions_.size() - 1));
    }
  }
  (void)version;
}

// ---------------------------------------------------------------------------
// Facade ConsensusApi
// ---------------------------------------------------------------------------

void ReplConsensusModule::consensus_bind_stream(StreamId stream,
                                                DecisionHandler handler) {
  StreamState& st = streams_[stream];
  st.handler = std::move(handler);
  st.handler_bound = true;
  if (!st.routed) {
    st.routed = true;
    for (std::uint32_t v = 0; v < versions_.size(); ++v) {
      bind_stream_on_version(stream, v);
    }
  }
  // Release deliveries that raced ahead of the handler.
  auto queued = std::move(st.pending_out);
  st.pending_out.clear();
  for (auto& [instance, value] : queued) {
    ++decisions_delivered_;
    st.handler(instance, value);
  }
}

void ReplConsensusModule::consensus_release_stream(StreamId stream) {
  auto it = streams_.find(stream);
  if (it == streams_.end()) return;
  it->second.handler = nullptr;
  it->second.handler_bound = false;
}

void ReplConsensusModule::consensus_sync(StreamId stream,
                                         InstanceId from_instance) {
  for (VersionInfo& v : versions_) {
    if (v.api != nullptr) v.api->consensus_sync(stream, from_instance);
  }
}

void ReplConsensusModule::bind_stream_on_version(StreamId stream,
                                                 std::uint32_t version) {
  versions_[version].api->consensus_bind_stream(
      stream, [this, version, stream](InstanceId instance, const Bytes& v) {
        on_inner_decision(version, stream, instance, v);
      });
}

void ReplConsensusModule::propose(StreamId stream, InstanceId instance,
                                  const Bytes& value) {
  StreamState& st = streams_[stream];
  if (!st.routed) {
    // Propose-before-bind client: route decisions now, buffer deliveries.
    st.routed = true;
    for (std::uint32_t v = 0; v < versions_.size(); ++v) {
      bind_stream_on_version(stream, v);
    }
  }
  st.outstanding[instance] = value;
  submit(stream, instance, st);
}

void ReplConsensusModule::submit(StreamId stream, InstanceId instance,
                                 StreamState& st) {
  const Bytes& value = st.outstanding[instance];
  Bytes wrapped;
  if (st.auth + 1 < versions_.size()) {
    // A newer version exists: vote to migrate this stream.
    const std::uint32_t target = st.auth + 1;
    wrapped = Wrapped::encode_vote(target, versions_[target].protocol,
                                   ModuleParams(), value);
  } else {
    wrapped = Wrapped::encode_plain(value);
  }
  versions_[st.auth].api->propose(stream, instance, wrapped);
}

// ---------------------------------------------------------------------------
// Decision routing
// ---------------------------------------------------------------------------

void ReplConsensusModule::on_inner_decision(std::uint32_t version,
                                            StreamId stream,
                                            InstanceId instance,
                                            const Bytes& wrapped) {
  StreamState& st = streams_[stream];
  st.decisions[{version, instance}] = wrapped;
  process_stream(stream, st);
}

void ReplConsensusModule::process_stream(StreamId stream, StreamState& st) {
  for (;;) {
    auto it = st.decisions.find({st.auth, st.next_process});
    if (it == st.decisions.end()) return;
    Wrapped w;
    try {
      w = Wrapped::decode(it->second);
    } catch (const CodecError& e) {
      DPU_LOG(kError, "repl-cons") << "s" << env().node_id()
                                   << " malformed wrapper: " << e.what();
      return;
    }
    st.decisions.erase(it);
    const InstanceId instance = st.next_process;
    ++st.next_process;
    st.outstanding.erase(instance);
    deliver(stream, st, instance, w.client_value);

    if (w.has_vote && w.target_version == st.auth + 1) {
      // Boundary crossed: migrate the stream to the next version, creating
      // it on demand (the announcement may not have arrived here yet).
      if (w.target_version >= versions_.size()) {
        create_version(w.target_version, w.protocol, w.params);
      }
      if (w.target_version < versions_.size()) {
        st.auth = w.target_version;
        // Re-route proposals that were submitted to the wrong side.
        for (const auto& [k, value] : st.outstanding) {
          (void)value;
          submit(stream, k, st);
        }
      }
    }
  }
}

void ReplConsensusModule::deliver(StreamId stream, StreamState& st,
                                  InstanceId instance,
                                  const Bytes& client_value) {
  (void)stream;
  if (!st.handler_bound) {
    st.pending_out.emplace_back(instance, client_value);
    return;
  }
  ++decisions_delivered_;
  st.handler(instance, client_value);
}

}  // namespace dpu
