#include "repl/repl_rbcast.hpp"

#include "util/log.hpp"

namespace dpu {

namespace {

ReplacementFacadeBase::FacadeConfig to_facade_config(
    const ReplRbcastConfig& config) {
  ReplacementFacadeBase::FacadeConfig f;
  f.facade_service = config.facade_service;
  f.inner_service = config.inner_service;
  f.initial_protocol = config.initial_protocol;
  f.initial_params = config.initial_params;
  f.retire_after = config.retire_after;
  // Rbcast owes a recovered stack no delivered history (it orders nothing;
  // upper layers recover what they need through their own catch-up), but it
  // does owe the current version metadata so the stack re-enters at the
  // live protocol/version instead of re-installing version 0.
  f.state_sync = ReplacementFacadeBase::FacadeConfig::StateSync::kMetadata;
  return f;
}

}  // namespace

ReplRbcastModule* ReplRbcastModule::create(Stack& stack, Config config) {
  auto* m = stack.emplace_module<ReplRbcastModule>(
      stack, "repl-" + config.facade_service, config);
  stack.bind<RbcastApi>(config.facade_service, m, m);
  return m;
}

ReplRbcastModule::ReplRbcastModule(Stack& stack, std::string instance_name,
                                   Config config)
    : ReplacementFacadeBase(stack, std::move(instance_name),
                            to_facade_config(config)),
      inner_(stack.require<RbcastApi>(fcfg_.inner_service)),
      switch_channel_(fnv1a64(Module::instance_name() + "/switch")) {}

void ReplRbcastModule::start() {
  dedup_.reset(env().world_size());
  facade_start();  // installs version 0; on_inner_installed hooks it up
}

void ReplRbcastModule::stop() {
  facade_stop();
  for (const InnerVersion& v : versions_) {
    v.api->rbcast_release_channel(switch_channel_);
  }
  channels_.clear();
}

// ---------------------------------------------------------------------------
// Facade RbcastApi
// ---------------------------------------------------------------------------

void ReplRbcastModule::rbcast(ChannelId channel, Payload payload) {
  const MsgId id = next_msg_id();
  if (state_syncing()) {
    // No installed version yet (recovering/late-joining): track only; the
    // sync finalize reissues under the synced version number.
    track_undelivered(id, std::move(payload), channel);
    return;
  }
  Payload wrapped = wrap_data(seq_number_, id, payload);
  // The channel rides as the undelivered entry's context so a reissue after
  // a switch re-broadcasts on the message's own client channel.
  track_undelivered(id, std::move(payload), channel);
  send_inner_data(std::move(wrapped), channel);
}

void ReplRbcastModule::rbcast_bind_channel(ChannelId channel,
                                           BroadcastHandler handler) {
  channels_.bind(channel, std::move(handler));
  // Intercept this channel on every live version: traffic of older versions
  // (including their pending-channel buffers) must still reach the facade.
  for (const InnerVersion& v : versions_) bind_interceptor(*v.api, channel);
}

void ReplRbcastModule::rbcast_release_channel(ChannelId channel) {
  channels_.release(channel);
  for (const InnerVersion& v : versions_) v.api->rbcast_release_channel(channel);
}

// ---------------------------------------------------------------------------
// ReplacementFacadeBase hooks
// ---------------------------------------------------------------------------

void ReplRbcastModule::send_inner_change(Payload wrapped) {
  inner_.call([this, wrapped = std::move(wrapped)](RbcastApi& api) mutable {
    api.rbcast(switch_channel_, std::move(wrapped));
  });
}

void ReplRbcastModule::send_inner_data(Payload wrapped, std::uint64_t ctx) {
  inner_.call([channel = static_cast<ChannelId>(ctx),
               wrapped = std::move(wrapped)](RbcastApi& api) mutable {
    api.rbcast(channel, std::move(wrapped));
  });
}

void ReplRbcastModule::on_inner_installed(Module* created,
                                          std::uint64_t /*sn*/) {
  auto* api = dynamic_cast<RbcastApi*>(created);
  assert(api != nullptr);
  versions_.push_back(InnerVersion{created, api});
  api->rbcast_bind_channel(switch_channel_,
                           [this](NodeId from, const Payload& data) {
                             on_switch_message(from, data);
                           });
  // Re-attach every client channel before the base reissues the undelivered
  // set through this version.
  channels_.for_each_key(
      [this, api](ChannelId channel) { bind_interceptor(*api, channel); });
}

void ReplRbcastModule::on_inner_retired(Module* retired) {
  std::erase_if(versions_, [retired](const InnerVersion& v) {
    return v.module == retired;
  });
}

void ReplRbcastModule::bind_interceptor(RbcastApi& api, ChannelId channel) {
  api.rbcast_bind_channel(channel,
                          [this, channel](NodeId from, const Payload& data) {
                            on_inner_message(channel, from, data);
                          });
}

// ---------------------------------------------------------------------------
// Inner deliveries
// ---------------------------------------------------------------------------

void ReplRbcastModule::on_inner_message(ChannelId channel, NodeId /*from*/,
                                        const Payload& data) {
  try {
    UnwrappedData m = unwrap_data(data);  // zero-copy slice of the wire
    // Any version's copy counts (rbcast orders nothing, so the version skew
    // is unobservable); integrity across versions is the dedup's job —
    // reissued messages carry their original id.
    if (!dedup_.mark_seen(m.id)) {
      ++stale_discarded_;
      return;
    }
    if (m.id.origin == env().node_id()) settle_undelivered(m.id);
    if (const auto handler = channels_.find(channel)) {
      (*handler)(m.id.origin, m.payload);
    }
  } catch (const CodecError& e) {
    DPU_LOG(kError, "repl-rbcast")
        << "s" << env().node_id() << " malformed wrapped message: "
        << e.what();
  }
}

void ReplRbcastModule::on_switch_message(NodeId from, const Payload& data) {
  try {
    Unwrapped m = unwrap(data);
    if (m.tag == kNil) throw CodecError("data on the switch channel");
    if (m.tag == kNewProtocol && m.sn != seq_number_) {
      // One-switch-at-a-time discipline: without an order there is no way to
      // serialize concurrent changes consistently, so a change targeting a
      // version we are no longer (or not yet) at is dropped — uniformly, on
      // every stack that already switched.  Refresh switches (kNewProtocolSync)
      // get the same sn test in perform_switch_from, which additionally
      // requeues and relaunches the responder's unserved requests.
      ++changes_dropped_;
      DPU_LOG(kWarn, "repl-rbcast")
          << "s" << env().node_id() << " dropping change to " << m.protocol
          << " from s" << from << " (its sn " << m.sn << " != " << seq_number_
          << ")";
      return;
    }
    perform_switch_from(m);
  } catch (const CodecError& e) {
    DPU_LOG(kError, "repl-rbcast")
        << "s" << env().node_id() << " malformed change message: " << e.what();
  }
}

}  // namespace dpu
