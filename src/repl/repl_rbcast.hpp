// Repl-RBcast — dynamic replacement of the *reliable broadcast* protocol,
// instantiating the shared replacement substrate (repl/facade.hpp) for a
// service without a total order.
//
// Structure is the paper's facade/inner pattern (Figure 3): this module
// provides the facade "rbcast" service that consensus, Repl-Consensus and
// the ABcast protocols call, and requires the inner "rbcast.inner" service
// the real protocol binds to.  Inner modules are unaware of replacement;
// only the rbcast *specification* (validity, uniform agreement, integrity —
// no ordering) is assumed.
//
// Two deliberate deviations from Algorithm 1, both consequences of rbcast
// having no total order:
//
//  * No consistent switch point.  The change message is reliably broadcast
//    through the inner protocol (the Algorithm-1 stance: coordinate through
//    the protocol being replaced), so every correct stack eventually
//    switches exactly once — but at its own point of its own delivery
//    sequence.  rbcast's specification orders nothing, so no client can
//    observe the skew.
//  * Dedup instead of stale-discard.  Line 18's "discard stale versions" is
//    sound only under total order (stale here = stale everywhere).  Here a
//    version-v copy may legitimately deliver at stack A before A switches
//    while B discards it after switching — if B dropped it and the origin
//    (which already delivered it locally) never reissued, B would violate
//    agreement.  The facade therefore accepts any version's copy and
//    deduplicates by message id across versions (CrossVersionDedup);
//    reissue of the undelivered set (line 16) still bounds the switch's
//    delivery latency.
//
// Discipline (documented requirement, like Repl-Consensus's): one rbcast
// replacement in flight at a time.  Concurrent change requests from
// different stacks have no order to serialize them; the facade drops a
// change whose version does not match its current one and logs it.
//
// Recovery and late join ride the substrate's state-transfer machinery in
// kMetadata mode: a recovering stack obtains the current (protocol, version)
// from a peer, which coordinates a refresh switch (kNewProtocolSync) through
// the inner rbcast so every stack re-enters a fresh instance and notes the
// recovered stack's incarnation epoch to rp2p at its own switch point.  No
// delivered history is transferred — rbcast orders nothing and owes none;
// upper layers (consensus, abcast) recover their state through their own
// catch-up protocols.
#pragma once

#include <string>
#include <unordered_map>

#include "core/module.hpp"
#include "core/stack.hpp"
#include "net/services.hpp"
#include "repl/facade.hpp"
#include "repl/update.hpp"

namespace dpu {

/// The service name the replacement module re-binds the real rbcast provider
/// to (cf. kAbcastInnerService).
inline constexpr char kRbcastInnerService[] = "rbcast.inner";

struct ReplRbcastConfig {
  std::string facade_service = kRbcastService;
  std::string inner_service = kRbcastInnerService;
  /// Protocol (library name, e.g. "rbcast.eager") installed at start.
  std::string initial_protocol = "rbcast.eager";
  ModuleParams initial_params;
  /// If > 0, destroy a replaced module this long after the switch.
  Duration retire_after = 0;
};

class ReplRbcastModule final : public ReplacementFacadeBase, public RbcastApi {
 public:
  using Config = ReplRbcastConfig;

  static ReplRbcastModule* create(Stack& stack, Config config = Config{});

  ReplRbcastModule(Stack& stack, std::string instance_name, Config config);

  void start() override;
  void stop() override;

  // ---- Facade RbcastApi ---------------------------------------------------
  void rbcast(ChannelId channel, Payload payload) override;
  void rbcast_bind_channel(ChannelId channel, BroadcastHandler handler) override;
  void rbcast_release_channel(ChannelId channel) override;

  /// Requests a global switch of the inner rbcast protocol.  Every correct
  /// stack performs the switch exactly once (reliable broadcast), each at
  /// its own point of its unordered delivery sequence.
  void change_rbcast(const std::string& protocol,
                     const ModuleParams& params = ModuleParams()) {
    request_change(protocol, params);
  }

  [[nodiscard]] const char* update_mechanism_name() const override {
    return "repl-rbcast";
  }

  /// Cross-version duplicates suppressed (the unordered analogue of the
  /// stale counter; also surfaced as stale_discarded()).
  [[nodiscard]] std::uint64_t duplicates_discarded() const {
    return stale_discarded_;
  }
  /// Change messages dropped for violating the one-switch-at-a-time
  /// discipline.
  [[nodiscard]] std::uint64_t changes_dropped() const {
    return changes_dropped_;
  }
  /// Retained dedup state (interval runs across all origins/epochs) — the
  /// memory bound under sustained churn, surfaced as a scenario counter.
  [[nodiscard]] std::size_t dedup_entries() const { return dedup_.entries(); }

  static constexpr char kTraceChangeRequested[] = "replr-change-requested";
  static constexpr char kTraceSwitchDone[] = "replr-switch-done";

 protected:
  // ---- ReplacementFacadeBase hooks ----------------------------------------
  void send_inner_change(Payload wrapped) override;
  void send_inner_data(Payload wrapped, std::uint64_t ctx) override;
  void on_inner_installed(Module* created, std::uint64_t sn) override;
  void on_inner_retired(Module* retired) override;
  [[nodiscard]] const char* change_requested_marker() const override {
    return kTraceChangeRequested;
  }
  [[nodiscard]] const char* switch_done_marker() const override {
    return kTraceSwitchDone;
  }

 private:
  void on_inner_message(ChannelId channel, NodeId from, const Payload& data);
  void on_switch_message(NodeId from, const Payload& data);
  /// Intercepts `channel` on inner version `api` (wrapped traffic of one
  /// client channel).
  void bind_interceptor(RbcastApi& api, ChannelId channel);

  ServiceRef<RbcastApi> inner_;
  /// Coordination channel of the change messages (derived from the
  /// cross-stack-identical instance name).
  ChannelId switch_channel_;
  /// Every live inner version, oldest first: client channels are intercepted
  /// on all of them, so late cross-version copies (and old versions' pending
  /// buffers) still reach the facade.  Retirement removes entries.
  struct InnerVersion {
    Module* module = nullptr;
    RbcastApi* api = nullptr;
  };
  std::vector<InnerVersion> versions_;
  /// Client handlers (reference-stable dispatch; see HandlerTable).
  HandlerTable<ChannelId, BroadcastHandler> channels_;
  CrossVersionDedup dedup_;
  std::uint64_t changes_dropped_ = 0;
};

}  // namespace dpu
