// Repl-Consensus — dynamic replacement of the *consensus* protocol.
//
// The paper announces this as future work ("We have already designed an
// algorithm to replace consensus protocols [16]"); the technical report is
// not publicly available, so this module implements a replacement algorithm
// designed here in the same spirit as Algorithm 1: coordinate the switch
// through the protocol being replaced, and let a totally-ordered point in
// its own decision sequence define the cut.
//
// Consensus is multi-stream/multi-instance (unlike the single delivery
// stream of ABcast), so the cut is per stream:
//
//  * The facade wraps every proposed value.  Once a switch to version V has
//    been announced (via reliable broadcast), every proposal that a stack
//    still routes to an older version carries a *switch vote* describing V.
//  * For each stream, the first decided instance whose (unique, agreed)
//    decided wrapper carries a vote is the stream's *boundary* b: instances
//    <= b belong to the old protocol, instances > b to the new one.  Since
//    the decision of an instance is identical everywhere, every stack
//    derives the same boundary — no extra agreement needed.
//  * A stack processes each stream's decisions in instance order, so it
//    learns boundaries deterministically; proposals it had routed to the
//    wrong side are re-submitted to the right module (the inner modules
//    deduplicate).  Decisions produced by the wrong side for an instance
//    are ignored by everyone (same rule, same data), so safety is
//    unaffected even while stacks disagree transiently about routing.
//
// Requirements documented for users (checked in tests):
//  * clients use instances of a stream sequentially (k+1 after k decided) —
//    true of CT-ABcast, the only in-tree client;
//  * one consensus switch at a time (votes target exactly version auth+1).
//
// Both old and new consensus modules keep running; idle old instances decay
// to a capped retry timer.  Like Algorithm 1, modules are unaware of the
// replacement: only the consensus *specification* is assumed.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "consensus/consensus.hpp"
#include "core/module.hpp"
#include "core/stack.hpp"
#include "repl/update.hpp"

namespace dpu {

struct ReplConsensusConfig {
  std::string facade_service = kConsensusService;
  /// Versioned inner service names: "<prefix>#<version>".
  std::string inner_prefix = "consensus.inner";
  std::string initial_protocol = "consensus.ct";
  ModuleParams initial_params;
};

class ReplConsensusModule final : public Module,
                                  public ConsensusApi,
                                  public UpdateMechanism {
 public:
  using Config = ReplConsensusConfig;

  static ReplConsensusModule* create(Stack& stack, Config config = Config{});

  ReplConsensusModule(Stack& stack, std::string instance_name, Config config);

  void start() override;
  void stop() override;

  // Facade ConsensusApi.
  void propose(StreamId stream, InstanceId instance,
               const Bytes& value) override;
  void consensus_bind_stream(StreamId stream, DecisionHandler handler) override;
  void consensus_release_stream(StreamId stream) override;
  /// Forwarded to every inner version: only the module(s) actually hosting
  /// the stream hold decisions to resend.
  void consensus_sync(StreamId stream, InstanceId from_instance) override;

  /// Requests a global switch of the consensus protocol.  Lazy per stream:
  /// each stream migrates at its next decided instance.
  ///
  /// DEPRECATED: new code should use the service-generic control plane —
  /// `UpdateApi::request_update("consensus", protocol, params)` — which
  /// validates against the ProtocolRegistry and emits the generic
  /// convergence markers (see README migration note).
  void change_consensus(const std::string& protocol,
                        const ModuleParams& params = ModuleParams());

  // ---- UpdateMechanism (repl/update.hpp) -----------------------------------
  [[nodiscard]] const std::string& update_service() const override {
    return config_.facade_service;
  }
  [[nodiscard]] const char* update_mechanism_name() const override {
    return "repl-consensus";
  }
  void request_update(const std::string& protocol,
                      const ModuleParams& params) override {
    change_consensus(protocol, params);
  }
  /// Consensus migrates lazily per stream, so "the current version" is the
  /// slowest routed stream's authoritative version: a stack reports the new
  /// protocol only once every stream it serves has crossed its boundary.
  [[nodiscard]] UpdateStatus update_status() const override;

  [[nodiscard]] std::size_t version_count() const { return versions_.size(); }
  [[nodiscard]] const std::string& protocol_of(std::size_t version) const {
    return versions_[version].protocol;
  }
  /// Current authoritative version of a stream (0 if never seen).
  [[nodiscard]] std::uint32_t stream_version(StreamId stream) const;
  [[nodiscard]] std::uint64_t decisions_delivered() const {
    return decisions_delivered_;
  }

  // Trace markers (TraceKind::kCustom) consumed by the scenario engine's
  // switch-window extraction, mirroring ReplAbcastModule's.
  static constexpr char kTraceChangeRequested[] = "replc-change-requested";
  static constexpr char kTraceVersionCreated[] = "replc-version-created";

 private:
  struct VersionInfo {
    std::string protocol;
    ConsensusApi* api = nullptr;
  };

  struct StreamState {
    DecisionHandler handler;
    bool handler_bound = false;
    bool routed = false;  // inner-version decision routing installed
    std::uint32_t auth = 0;          // authoritative version for next_process
    InstanceId next_process = 1;     // next instance to settle
    /// Wrapped decisions per (version, instance).
    std::map<std::pair<std::uint32_t, InstanceId>, Bytes> decisions;
    /// Client values proposed but not yet settled.
    std::map<InstanceId, Bytes> outstanding;
    /// Deliveries that arrived before the handler bound.
    std::vector<std::pair<InstanceId, Bytes>> pending_out;
  };

  void on_announce(NodeId from, const Payload& data);
  void create_version(std::uint32_t version, const std::string& protocol,
                      const ModuleParams& params);
  void bind_stream_on_version(StreamId stream, std::uint32_t version);
  void submit(StreamId stream, InstanceId instance, StreamState& st);
  void on_inner_decision(std::uint32_t version, StreamId stream,
                         InstanceId instance, const Bytes& wrapped);
  void process_stream(StreamId stream, StreamState& st);
  void deliver(StreamId stream, StreamState& st, InstanceId instance,
               const Bytes& client_value);

  Config config_;
  ServiceRef<RbcastApi> rbcast_;
  UpdateManagerModule* manager_ = nullptr;  // null when composed standalone
  ChannelId announce_channel_;
  std::vector<VersionInfo> versions_;
  std::map<StreamId, StreamState> streams_;
  std::uint64_t decisions_delivered_ = 0;
};

}  // namespace dpu
