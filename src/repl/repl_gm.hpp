// Repl-GM — dynamic replacement of the *group membership* protocol,
// instantiating the shared replacement substrate (repl/facade.hpp) for a
// dependent, stateful layer (ROADMAP: "GM-layer replacement through the same
// facade/inner pattern").
//
// Structure is the paper's facade/inner pattern: this module provides the
// facade "gm" service applications call, and the real GM protocol binds to a
// *versioned* inner slot ("gm.inner#<sn>") that only the facade knows.  The
// inner GM modules are unaware of replacement; only the membership
// *specification* — every stack installs the same sequence of views — is
// assumed.
//
// Coordination rides the totally-ordered channel GM itself depends on (the
// topic mux over abcast, paper Figure 4): the change message is published on
// the facade's own topic, so every stack performs the switch at the same
// point of the total order relative to every membership op — the Algorithm-1
// property, obtained from the layer *below* the replaced one because GM's
// own interface (join/leave/exclude) cannot carry an opaque change message.
//
// State continuity.  A fresh inner GM instance boots with the full static
// world as its view.  At the switch point every stack holds the identical
// current view V (total order), so each stack deterministically re-excludes
// the non-members of V through the new instance; the n-fold duplicate
// excludes are no-ops by GM's own idempotence rule ("no-op operations do not
// create a view"), so all stacks still install the same view sequence.
// Membership ops that were published under the old version but ordered
// *after* the switch land in the (unbound, still live) old instance on every
// stack uniformly — the GM analogue of Algorithm 1's line-18 stale discard;
// unlike abcast messages they are not reissued, because GM's specification
// owes clients view consistency, not op delivery.
//
// The facade renumbers view ids monotonically across versions, so clients
// observe one continuous view history.
#pragma once

#include <string>

#include "app/topics.hpp"
#include "core/module.hpp"
#include "core/stack.hpp"
#include "gm/gm.hpp"
#include "repl/facade.hpp"
#include "repl/update.hpp"

namespace dpu {

/// Versioned inner slots are "<prefix>#<sn>" (cf. kAbcastInnerService).
inline constexpr char kGmInnerService[] = "gm.inner";

struct ReplGmConfig {
  std::string facade_service = kGmService;
  std::string inner_service = kGmInnerService;
  /// Protocol (library name, e.g. "gm.abcast") installed at start.
  std::string initial_protocol = "gm.abcast";
  ModuleParams initial_params;
  /// If > 0, destroy a replaced module this long after the switch.
  Duration retire_after = 0;
};

class ReplGmModule final : public ReplacementFacadeBase,
                           public GmApi,
                           public GmListener {
 public:
  using Config = ReplGmConfig;

  static ReplGmModule* create(Stack& stack, Config config = Config{});

  ReplGmModule(Stack& stack, std::string instance_name, Config config);

  void start() override;
  void stop() override;

  // ---- Facade GmApi -------------------------------------------------------
  void gm_join(NodeId node) override;
  void gm_leave(NodeId node) override;
  void gm_exclude(NodeId node) override;
  [[nodiscard]] const View& gm_view() const override { return view_; }

  // ---- Inner-version GmListener (views of the current version) ------------
  void on_view(const View& view) override;

  /// Requests a global, totally-ordered switch of the inner GM protocol.
  void change_gm(const std::string& protocol,
                 const ModuleParams& params = ModuleParams()) {
    request_change(protocol, params);
  }

  [[nodiscard]] const char* update_mechanism_name() const override {
    return "repl-gm";
  }

  /// Facade-renumbered view history across all versions, in order.
  [[nodiscard]] const std::vector<View>& history() const { return history_; }

  static constexpr char kTraceChangeRequested[] = "replg-change-requested";
  static constexpr char kTraceSwitchDone[] = "replg-switch-done";

 protected:
  // ---- ReplacementFacadeBase hooks ----------------------------------------
  void send_inner_change(Payload wrapped) override;
  void send_inner_data(Payload wrapped, std::uint64_t ctx) override;
  void on_inner_installed(Module* created, std::uint64_t sn) override;
  [[nodiscard]] const char* change_requested_marker() const override {
    return kTraceChangeRequested;
  }
  [[nodiscard]] const char* switch_done_marker() const override {
    return kTraceSwitchDone;
  }

 private:
  void on_change_message(NodeId from, const Bytes& payload);
  template <class Fn>
  void call_inner(Fn&& fn);

  ServiceRef<TopicsApi> topics_;
  UpcallRef<GmListener> up_;
  /// Control topic of the change messages (identical across stacks).
  std::string switch_topic_;
  /// Inner slot the facade currently listens on ("" before version 0).
  std::string listening_on_;
  /// Facade view: inner views renumbered monotonically across versions.
  View view_;
  std::vector<View> history_;
};

}  // namespace dpu
