// Graceful-Adaptation-style baseline: coordinated AAC switch with barrier
// rounds (Chen/Hiltunen/Schlichting, as §4.2 describes it).
//
// Roles: the stack that initiates the switch acts as the *component
// adaptor* (CA); every stack hosts the old and (during a switch) the new
// *adaptation-aware component* (AAC) — here: two ABcast protocol instances
// bound to versioned internal services.
//
// Switch procedure (following the paper's three steps, plus the ordered
// flush that makes the cut consistent):
//   1. CA sends PREPARE to all stacks; each creates the new AAC and replies
//      PREPARED.                                 (barrier round 1)
//   2. CA sends DEACTIVATE; each stack stops feeding the old AAC (new
//      application calls are queued), waits until its own in-flight
//      messages have been delivered, replies DRAINED.   (barrier round 2)
//   3. CA broadcasts an ACTIVATE marker through the *old* AAC; its totally
//      ordered delivery is the activation point: every stack unqueues into
//      the new AAC.
//
// Measured contrasts with Repl-ABcast (paper §5.3):
//  * barrier synchronization (two control rounds + drain wait) stretches
//    the switch duration; application calls queue during phases 2-3;
//  * the restriction that "each AAC in a module m can only use the services
//    required by m": a switch target requiring an unbound service is
//    rejected (no recursive creation — Repl's flexibility advantage).
#pragma once

#include <deque>
#include <map>
#include <set>
#include <string>

#include "abcast/abcast.hpp"
#include "core/module.hpp"
#include "core/stack.hpp"
#include "net/services.hpp"
#include "repl/update.hpp"

namespace dpu {

struct GracefulConfig {
  std::string facade_service = kAbcastService;
  /// Prefix of the versioned internal AAC services ("<prefix>#<version>").
  std::string aac_service_prefix = "abcast.aac";
  std::string initial_protocol = "abcast.ct";
  ModuleParams initial_params;
};

class GracefulSwitchModule final : public Module,
                                   public AbcastApi,
                                   public AbcastListener,
                                   public UpdateMechanism {
 public:
  using Config = GracefulConfig;

  static GracefulSwitchModule* create(Stack& stack, Config config = Config{});

  GracefulSwitchModule(Stack& stack, std::string instance_name, Config config);

  void start() override;
  void stop() override;

  // Facade AbcastApi.
  void abcast(Payload payload) override;

  // Listener on the versioned AAC services.
  void adeliver(NodeId sender, const Bytes& inner_payload) override;

  /// Initiates the coordinated adaptation (this stack becomes the CA).
  /// Throws if `protocol` requires a service that is not bound — the
  /// Graceful Adaptation restriction.
  ///
  /// DEPRECATED: new code should use the service-generic control plane —
  /// `UpdateApi::request_update("abcast", protocol, params)` — which
  /// validates against the ProtocolRegistry and emits the generic
  /// convergence markers (see README migration note).
  void change_adaptation(const std::string& protocol,
                         const ModuleParams& params = ModuleParams());

  // ---- UpdateMechanism (repl/update.hpp) -----------------------------------
  [[nodiscard]] const std::string& update_service() const override {
    return config_.facade_service;
  }
  [[nodiscard]] const char* update_mechanism_name() const override {
    return "graceful";
  }
  void request_update(const std::string& protocol,
                      const ModuleParams& params) override {
    change_adaptation(protocol, params);
  }
  /// The *activated* AAC, not the prepared one: until barrier round 3 the
  /// application still runs on the old protocol.
  [[nodiscard]] UpdateStatus update_status() const override {
    return UpdateStatus{active_protocol_, version_};
  }

  [[nodiscard]] std::uint64_t switches_completed() const {
    return switches_completed_;
  }
  [[nodiscard]] std::uint64_t calls_queued_during_switch() const {
    return calls_queued_;
  }
  [[nodiscard]] Duration total_queueing_window() const {
    return total_queue_window_;
  }
  [[nodiscard]] std::uint64_t late_old_deliveries() const {
    return late_old_deliveries_;
  }
  [[nodiscard]] bool switching() const {
    return phase_ != Phase::kIdle || is_ca_;
  }

  static constexpr char kTraceDeactivated[] = "graceful-deactivated";
  static constexpr char kTraceActivated[] = "graceful-activated";

 private:
  enum class Phase { kIdle, kPrepared, kDraining, kAwaitingMarker };
  enum CtlType : std::uint8_t {
    kPrepare = 0,
    kPrepared = 1,
    kDeactivate = 2,
    kDrained = 3,
  };
  enum Tag : std::uint8_t { kData = 0, kActivateMarker = 1 };

  [[nodiscard]] std::string aac_service(std::uint64_t version) const {
    return config_.aac_service_prefix + "#" + std::to_string(version);
  }

  void send_ctl(NodeId dst, CtlType type, std::uint64_t switch_id,
                const std::string& protocol, const ModuleParams& params);
  void on_ctl(NodeId from, const Payload& data);
  void prepare_new_aac(std::uint64_t switch_id, const std::string& protocol,
                       const ModuleParams& params);
  void begin_drain();
  void check_drained();
  void activate();
  void forward_to_active(const Payload& payload);

  Config config_;
  ServiceRef<Rp2pApi> rp2p_;
  UpcallRef<AbcastListener> up_;
  UpdateManagerModule* manager_ = nullptr;  // null when composed standalone
  ChannelId ctl_channel_;

  std::uint64_t version_ = 0;  // active AAC version
  std::uint64_t next_local_ = 1;
  std::set<MsgId> in_flight_;  // own messages not yet self-delivered
  std::string cur_protocol_;     // latest prepared AAC
  std::string active_protocol_;  // AAC the application actually runs on

  Phase phase_ = Phase::kIdle;
  std::uint64_t switch_id_ = 0;  // == version_ + 1 while switching
  bool is_ca_ = false;
  std::set<NodeId> prepared_from_;
  std::set<NodeId> drained_from_;
  std::deque<Payload> queued_calls_;
  TimePoint queue_since_ = 0;

  std::uint64_t switches_completed_ = 0;
  std::uint64_t calls_queued_ = 0;
  Duration total_queue_window_ = 0;
  std::uint64_t late_old_deliveries_ = 0;
};

}  // namespace dpu
