// Replacement substrate — the reusable facade/inner interception machinery
// behind every "repl" mechanism (paper §4 structure, §5 Algorithm 1).
//
// The paper's central claim is that dynamic update is a *structural*
// property of a service-based stack: the replacement module needs only the
// *specification* of the service it replaces.  This header makes the
// structure reusable: everything in Algorithm 1 that is not specific to
// atomic broadcast lives here, and a per-service facade module supplies only
// the service interface plumbing (how to transmit a wrapped payload through
// the inner service, and what to do when a new inner version appears).
//
// Shared pieces:
//  * `ReplacementFacadeBase` — Module + UpdateMechanism base holding the
//    Algorithm-1 state (seqNumber, the undelivered set, the current inner
//    module), the wrap/filter/unwrap wire format (byte-identical to the
//    pre-extraction Repl-ABcast format), the switch sequencing of lines
//    10-16 (unbind -> create_module -> bind -> reissue), version accounting,
//    trace markers, UpdateApi registration, and the state-transfer substrate
//    (a bounded replay log plus a snapshot protocol that lets a recovering
//    or late-joining stack obtain version metadata and delivered history
//    from a peer — see the "State-transfer machinery" section below).
//  * `CrossVersionDedup` — per-origin duplicate suppression across protocol
//    versions, for facades over services without a total order (rbcast):
//    where Repl-ABcast can discard stale-version messages (the total order
//    makes the discard consistent everywhere), an unordered service must
//    accept any version's copy and deduplicate by message id instead.
//
// Three facades instantiate the substrate: `ReplAbcastModule`
// (repl/repl_abcast.hpp, Algorithm 1 verbatim), `ReplRbcastModule`
// (repl/repl_rbcast.hpp, reliable broadcast) and `ReplGmModule`
// (repl/repl_gm.hpp, group membership).  `ReplConsensusModule` keeps its own
// machinery: consensus is multi-stream and migrates lazily per stream, a
// different algorithm (see repl/repl_consensus.hpp).
#pragma once

#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/module.hpp"
#include "core/stack.hpp"
#include "fd/fd.hpp"
#include "net/services.hpp"
#include "repl/update.hpp"
#include "util/ids.hpp"

namespace dpu {

/// Encodes ModuleParams into a change message so every stack creates the new
/// protocol with identical parameters.
void encode_module_params(BufWriter& w, const ModuleParams& params);
[[nodiscard]] ModuleParams decode_module_params(BufReader& r);

/// Per-origin duplicate suppression across protocol versions and
/// incarnations.  Message ids from one origin are monotonically increasing
/// within one incarnation epoch (the facade's id counter never resets on a
/// switch), but may *arrive* out of order across versions — two inner
/// protocol instances are independent transports, and reissued messages
/// carry their original id.  A watermark (`next`) plus an ahead-set is both
/// correct for that arrival order and bounded: `next` only advances through
/// contiguously seen ids, so an id below it was definitely seen.
class CrossVersionDedup {
 public:
  /// Archived windows kept per origin: a dead incarnation's window stays
  /// queryable until this many newer incarnations supersede it; beyond that
  /// its ids are treated as already seen (suppression errs on the safe,
  /// no-duplicates side for relays that are several restarts stale).
  static constexpr std::size_t kMaxOldEpochs = 4;

  /// Sized for `world` origins; ids start at each origin's incarnation base.
  void reset(std::size_t world);

  /// Returns true on first sighting of `id`, false for a duplicate.
  [[nodiscard]] bool mark_seen(const MsgId& id);

  /// Retained state across all origins and epochs, in coalesced ahead-run
  /// intervals (the memory bound under sustained churn; surfaced as the
  /// `dedup_entries` scenario counter).
  [[nodiscard]] std::size_t entries() const;

 private:
  struct EpochWindow {
    std::uint64_t next = 1;  ///< lowest id not yet seen contiguously
    /// Seen ids beyond `next`, coalesced into [start, end) runs: memory
    /// scales with arrival fragmentation, not with message count.
    std::map<std::uint64_t, std::uint64_t> ahead;
  };
  struct Origin {
    std::uint64_t epoch = 0;
    EpochWindow cur;
    /// Earlier incarnations' windows (newest kMaxOldEpochs): late
    /// cross-version copies of a dead incarnation's messages must still
    /// dedup (and still deliver once).
    std::map<std::uint64_t, EpochWindow> old_epochs;
  };
  std::vector<Origin> origins_;
};

/// Base of the per-service replacement facades: Algorithm 1's state and
/// switch sequencing, generic over the intercepted service.
///
/// A facade module provides the *facade* service that applications and
/// dependent protocols call, and requires the *inner* service that the real
/// protocol binds to; inner protocol modules are completely unaware that
/// replacement exists.  Subclasses implement the service-interface plumbing
/// (the pure virtuals below); everything else — wrapping, the undelivered
/// set, the totally-or-reliably-coordinated switch, reissue, version
/// accounting, UpdateApi registration, retirement — is shared.
class ReplacementFacadeBase : public Module, public UpdateMechanism {
 public:
  struct FacadeConfig {
    /// Service name applications call (paper: the interface r-p).
    std::string facade_service;
    /// Service name (or, with `versioned_inner`, the name prefix) the real
    /// protocol binds to (paper: p).
    std::string inner_service;
    /// When true, each version binds a fresh "<inner_service>#<sn>" slot
    /// instead of rebinding one fixed slot.  Facades whose response
    /// interface carries no version information (GM views) use this to
    /// listen to exactly the current version's upcalls.
    bool versioned_inner = false;
    /// Protocol (library name) installed at start.
    std::string initial_protocol;
    ModuleParams initial_params;
    /// If > 0, destroy a replaced module this long after the switch
    /// (extension; 0 keeps old modules in the stack forever, like the
    /// paper).
    Duration retire_after = 0;

    /// What a state_request from a recovering or late-joining peer is
    /// answered with (the per-service state-transfer contract).
    enum class StateSync : std::uint8_t {
      /// No state channel.  Recovery relies on the transport below the
      /// facade replaying history *through* it (gm over a replayed abcast
      /// re-performs every switch organically).
      kNone,
      /// Version metadata only (sn, protocol, params): services that owe no
      /// delivered history — rbcast orders nothing and upper layers recover
      /// what they need through their own catch-up.
      kMetadata,
      /// Metadata plus the delivered-history replay log: totally ordered
      /// services whose audit contract makes a recovered stack re-deliver
      /// the full history (abcast).
      kLog,
    };
    StateSync state_sync = StateSync::kNone;
    /// Requester-side retry: rotate to the next fd-trusted responder if a
    /// requested snapshot has not completed within this window.
    Duration sync_retry = 150 * kMillisecond;
    /// Replay-log bound (kLog): entries beyond the cap are trimmed oldest
    /// first; snapshots carry the trimmed count so a requester knows its
    /// replay is partial (surfaced as the log_trimmed() counter).
    std::size_t replay_log_cap = std::size_t{1} << 20;
  };

  // ---- UpdateMechanism (repl/update.hpp) ----------------------------------
  [[nodiscard]] const std::string& update_service() const override {
    return fcfg_.facade_service;
  }
  void request_update(const std::string& protocol,
                      const ModuleParams& params) override {
    request_change(protocol, params);
  }
  [[nodiscard]] UpdateStatus update_status() const override {
    return UpdateStatus{cur_protocol_, seq_number_};
  }

  // ---- Wire format --------------------------------------------------------
  // Byte-identical to the pre-extraction Repl-ABcast format (public so tests
  // can pin it and facades' free helpers can parse it):
  //   data:   u8 kNil             | varint sn | MsgId | blob payload
  //   change: u8 kNewProtocol     | varint sn | string protocol | params
  //   sync:   u8 kNewProtocolSync | varint sn | string protocol | params
  //           | u32 responder | varint n | n x (u32 node, varint epoch)
  // kNewProtocolSync is a *refresh* switch: the current protocol
  // re-instantiated at the next version number, coordinated through the
  // replaced service exactly like a real change, so a recovering or
  // late-joining stack can enter at a clean instance boundary instead of
  // joining a protocol instance mid-stream.  It additionally carries the
  // requesters' incarnation epochs; every stack notes them to rp2p at its
  // switch point, which makes the switch the epoch-sync barrier for the
  // recovered stack's links (Rp2pApi::rp2p_note_peer_epoch).
  enum Tag : std::uint8_t { kNil = 0, kNewProtocol = 1, kNewProtocolSync = 2 };

  struct Unwrapped {
    Tag tag = kNil;
    std::uint64_t sn = 0;
    // tag == kNil:
    MsgId id;
    Bytes payload;
    // tag == kNewProtocol / kNewProtocolSync:
    std::string protocol;
    ModuleParams params;
    // tag == kNewProtocolSync:
    NodeId responder = kNoNode;
    std::vector<std::pair<NodeId, std::uint64_t>> sync_epochs;
  };

  /// Data wrapper parse result of the zero-copy variant: `payload` is a
  /// slice of the wire buffer, not a copy.
  struct UnwrappedData {
    std::uint64_t sn = 0;
    MsgId id;
    Payload payload;
  };

  [[nodiscard]] static Payload wrap_data(std::uint64_t sn, const MsgId& id,
                                         const Payload& payload);
  /// Parses either message kind; throws CodecError on malformed input.
  [[nodiscard]] static Unwrapped unwrap(const Bytes& wire);
  [[nodiscard]] static Unwrapped unwrap(const Payload& wire);
  /// Parses a data message without copying the payload (a slice of `wire`);
  /// throws CodecError on malformed input or a change-message tag.
  [[nodiscard]] static UnwrappedData unwrap_data(const Payload& wire);

  // ---- Introspection ------------------------------------------------------
  [[nodiscard]] std::uint64_t seq_number() const { return seq_number_; }
  [[nodiscard]] const std::string& current_protocol() const {
    return cur_protocol_;
  }
  [[nodiscard]] std::size_t undelivered_count() const {
    return undelivered_.size();
  }
  [[nodiscard]] std::uint64_t switches_completed() const {
    return switches_completed_;
  }
  [[nodiscard]] std::uint64_t stale_discarded() const {
    return stale_discarded_;
  }
  [[nodiscard]] std::uint64_t reissued_total() const { return reissued_total_; }

  // ---- State-transfer introspection ---------------------------------------
  /// True while this stack waits for a snapshot from a responder.
  [[nodiscard]] bool state_syncing() const { return syncing_; }
  [[nodiscard]] std::uint64_t snapshots_served() const {
    return snapshots_served_;
  }
  [[nodiscard]] std::uint64_t sync_retries() const { return sync_retries_; }
  /// Refresh switches performed (kNewProtocolSync; not counted in
  /// switches_completed()).
  [[nodiscard]] std::uint64_t refresh_switches() const {
    return refresh_switches_;
  }
  /// Refresh switches discarded because another switch was ordered between
  /// their launch and their delivery (see perform_switch_from).
  [[nodiscard]] std::uint64_t stale_syncs_dropped() const {
    return stale_syncs_dropped_;
  }
  [[nodiscard]] std::size_t replay_log_size() const {
    return replay_log_.size();
  }
  [[nodiscard]] std::uint64_t log_trimmed() const { return log_trimmed_; }
  /// Data entries this stack re-delivered from a received snapshot.
  [[nodiscard]] std::uint64_t replayed_from_snapshot() const {
    return replayed_from_snapshot_;
  }

  /// Trace marker emitted when a snapshot finalizes
  /// ("state-sync-done:<protocol>:sn=<n>:replayed=<k>").
  static constexpr char kTraceStateSyncDone[] = "state-sync-done";

 protected:
  ReplacementFacadeBase(Stack& stack, std::string instance_name,
                        FacadeConfig config);

  /// Change message under the current version number (Algorithm 1 line 6).
  [[nodiscard]] Payload wrap_change(const std::string& protocol,
                                    const ModuleParams& params) const;

  // ---- Algorithm 1 operations ---------------------------------------------

  /// Registers with the stack's update manager (when present) and installs
  /// the initial protocol as version 0.  Call from the subclass's start().
  void facade_start();
  /// Unregisters and cancels retirement timers.  Call from stop().
  void facade_stop();

  /// Fresh globally-unique id for a facade message of this stack (line 8's
  /// id; the counter is continuous across switches and starts at the
  /// incarnation's epoch base).
  [[nodiscard]] MsgId next_msg_id() { return MsgId{env().node_id(), next_local_++}; }

  /// Lines 8 / 19-20: the undelivered set of this stack's own messages.
  /// `ctx` is facade-defined per-message context carried to send_inner_data
  /// on reissue (the rbcast facade stores the client channel; abcast passes
  /// 0).
  void track_undelivered(const MsgId& id, Payload payload, std::uint64_t ctx);
  /// Removes `id` from the undelivered set; returns whether it was tracked.
  bool settle_undelivered(const MsgId& id);

  /// Lines 5-6: validates `protocol` against the registry, emits the
  /// change-requested marker and transmits the change message through the
  /// current inner version.  Any stack may call this; when/where the switch
  /// happens is the coordination contract of the facade (total order for
  /// abcast/gm, reliable delivery for rbcast).
  void request_change(const std::string& protocol, const ModuleParams& params);

  /// Lines 10-16: performs the switch on this stack — bump seqNumber, unbind
  /// the old inner module (it stays in the stack and may still respond),
  /// create_module the new protocol (recursively creating providers for
  /// missing services, lines 22-28 live in Stack::create_module), let the
  /// subclass re-attach (on_inner_installed), then re-issue every
  /// undelivered message through the new version.
  void perform_switch(const std::string& protocol, const ModuleParams& params);

  // ---- State transfer (recovery / late join) ------------------------------

  /// Routes a parsed change message to the right switch flavour:
  /// kNewProtocol -> perform_switch; kNewProtocolSync -> refresh switch
  /// (epoch notes, no done-marker/update-outcome, snapshot send when this
  /// stack is the responder).  Facade delivery paths call this for any
  /// non-kNil tag.
  void perform_switch_from(const Unwrapped& u);

  /// Appends one facade-level data delivery to the replay log (kLog mode;
  /// no-op otherwise).  Call at the delivery point, before notifying the
  /// client, so snapshot order equals delivery order.  `payload` is the
  /// unwrapped inner blob (a slice of the wire buffer).
  void log_delivered(const MsgId& id, const Payload& payload);

  /// Replays one snapshot data entry to the client during sync finalize, in
  /// snapshot (= original delivery) order.  kLog facades override; default
  /// no-op.
  virtual void replay_delivered(const MsgId& id, const Payload& payload);
  /// Called after a snapshot finalizes, right before the undelivered set is
  /// reissued under the synced version.  Default no-op.
  virtual void on_state_sync_complete();

  /// Inner slot name of version `sn` ("<inner_service>" fixed, or
  /// "<inner_service>#<sn>" when versioned).
  [[nodiscard]] std::string inner_service_name(std::uint64_t sn) const;
  /// Current version's inner slot name.
  [[nodiscard]] std::string inner_service_name() const {
    return inner_service_name(seq_number_);
  }
  /// Cross-stack-identical instance name of version `sn` of `protocol`.
  [[nodiscard]] std::string versioned_instance(const std::string& protocol,
                                               std::uint64_t sn) const;

  // ---- Service-specific plumbing (subclass hooks) -------------------------

  /// Transmits a change message through the current inner version (line 6).
  virtual void send_inner_change(Payload wrapped) = 0;
  /// Transmits a data message through the current inner version (lines 9 and
  /// 16); `ctx` is whatever track_undelivered stored for this message.
  virtual void send_inner_data(Payload wrapped, std::uint64_t ctx) = 0;
  /// Called after a new inner version is created and bound, before the
  /// undelivered set is reissued through it — re-attach listeners/channels
  /// here.  `sn` is the new version, 0 for the initial installation.
  virtual void on_inner_installed(Module* created, std::uint64_t sn);
  /// Called right before a replaced inner module is destroyed (the
  /// retire_after extension) — drop any direct references to it here.
  virtual void on_inner_retired(Module* retired);
  /// TraceKind::kCustom detail prefixes ("<marker>:<protocol>" on request,
  /// "<marker>:<protocol>:sn=<n>" on completion); benches and the scenario
  /// engine locate switch windows by scanning for these.
  [[nodiscard]] virtual const char* change_requested_marker() const = 0;
  [[nodiscard]] virtual const char* switch_done_marker() const = 0;

  // ---- Shared state (subclass-visible) ------------------------------------
  FacadeConfig fcfg_;
  UpdateManagerModule* manager_ = nullptr;  // null when composed standalone

  std::uint64_t seq_number_ = 0;  // Algorithm 1 line 4
  std::string cur_protocol_;
  /// Parameters the current version was created with (sans the generated
  /// "instance" key); refresh switches and snapshots re-send them.
  ModuleParams cur_params_;
  Module* cur_module_ = nullptr;

  std::uint64_t switches_completed_ = 0;
  std::uint64_t stale_discarded_ = 0;
  std::uint64_t reissued_total_ = 0;

 private:
  struct UndeliveredEntry {
    Payload payload;
    std::uint64_t ctx = 0;
  };

  // ---- State-transfer machinery -------------------------------------------
  // A recovering or late-joining stack (incarnation > 0) does not install
  // version 0: it asks an fd-trusted peer for the facade's state over a
  // dedicated rp2p channel ("<instance>/state").  The responder coordinates
  // a *refresh* switch (kNewProtocolSync) through the replaced service — the
  // switch point is totally ordered (abcast) or reliably delivered (rbcast),
  // every stack notes the requester's incarnation epoch to rp2p there, and
  // the responder snapshots its replay log as of right before its own switch
  // (the cut).  The requester installs the snapshot (replay + metadata),
  // creates the post-switch inner instance — whose traffic rp2p buffered for
  // it — and reissues its undelivered set.  Exactly-once falls out of the
  // cut: snapshot entries are pre-switch history, the fresh instance carries
  // everything after.
  //
  // State channel wire:
  //   request: u8 kStateRequest | varint incarnation
  //   decline: u8 kStateDecline
  //   header:  u8 kStateHeader  | varint sn | string protocol | params
  //            | varint entry_count | varint trimmed
  //   chunk:   u8 kStateChunk   | varint n | n x entry
  //   cancel:  u8 kStateCancel  | varint incarnation
  //   entry:   u8 kLogData   | MsgId | blob
  //          | u8 kLogSwitch | varint sn | string protocol
  enum StateTag : std::uint8_t {
    kStateRequest = 0,
    kStateDecline = 1,
    kStateHeader = 2,
    kStateChunk = 3,
    kStateCancel = 4,
  };
  enum LogKind : std::uint8_t { kLogData = 0, kLogSwitch = 1 };
  struct LogEntry {
    std::uint8_t kind = kLogData;
    MsgId id;         // kLogData
    Payload payload;  // kLogData: the inner blob (slice of the wire buffer)
    std::uint64_t sn = 0;   // kLogSwitch
    std::string protocol;   // kLogSwitch
  };
  struct StateRequest {
    NodeId node = kNoNode;
    std::uint64_t epoch = 0;
  };

  /// Shared implementation of real and refresh switches; `sync` is non-null
  /// for a refresh switch (the parsed kNewProtocolSync message).
  void perform_switch_impl(const std::string& protocol,
                           const ModuleParams& params, const Unwrapped* sync);

  void on_state_datagram(NodeId src, const Payload& wire);
  /// Requester: (re-)sends the state request to the next candidate and arms
  /// the retry timer.  `rotate` advances past the current responder first.
  void send_state_request(bool rotate);
  [[nodiscard]] NodeId pick_responder() const;
  void handle_state_request(NodeId src, std::uint64_t epoch);
  /// Responder: a requester finalized elsewhere — forget its outstanding
  /// requests (up to the given epoch) so no further refresh is launched for
  /// them.
  void handle_state_cancel(NodeId src, std::uint64_t epoch);
  void handle_state_header(NodeId src, BufReader& r);
  void handle_state_chunk(NodeId src, BufReader& r);
  /// Requester: all snapshot entries arrived — install metadata, replay,
  /// create the inner instance, reissue undelivered.
  void finalize_state_sync();
  /// Responder: coordinates one refresh switch covering every pending
  /// request (at most one in flight; re-launched when more arrive).
  void launch_refresh_switch();
  /// Responder: sends header + chunked entries [0, cut) to `dst`.
  void send_snapshot(NodeId dst, std::size_t cut);
  /// Appends to the replay log, trimming to replay_log_cap (kLog only).
  void push_log(LogEntry e);
  [[nodiscard]] Payload wrap_change_sync() const;
  static void encode_log_entry(BufWriter& w, const LogEntry& e);
  [[nodiscard]] static LogEntry decode_log_entry(BufReader& r);

  std::uint64_t next_local_ = 1;  // id generator for this stack's messages
  /// Algorithm 1 line 2: this stack's messages not yet delivered back to it.
  std::map<MsgId, UndeliveredEntry> undelivered_;
  std::vector<std::unique_ptr<TimerSlot>> retire_timers_;

  // State-transfer state (inert when state_sync == kNone).
  ServiceRef<Rp2pApi> rp2p_;
  ServiceRef<FdApi> fd_;
  ChannelId state_channel_ = 0;
  bool state_channel_bound_ = false;
  std::deque<LogEntry> replay_log_;
  std::uint64_t log_trimmed_ = 0;

  // Requester side.
  bool syncing_ = false;
  std::uint32_t sync_attempt_ = 0;  // rotates the responder candidate
  NodeId sync_responder_ = kNoNode;
  /// Who the accepted snapshot header came from.  Any peer we asked may
  /// answer — a late answer from a previous responder is still the earliest
  /// refresh switch launched for us, and joining at the earliest one means
  /// we create every inner instance the group binds from there on.
  NodeId sync_source_ = kNoNode;
  std::unique_ptr<TimerSlot> sync_timer_;
  bool sync_header_seen_ = false;
  std::size_t sync_progress_mark_ = 0;  // stall detection between retries
  std::uint64_t sync_expected_ = 0;
  std::uint64_t sync_sn_ = 0;
  std::string sync_protocol_;
  ModuleParams sync_params_;
  std::uint64_t sync_trimmed_ = 0;
  std::vector<LogEntry> sync_entries_;

  /// Changes requested while syncing, transmitted once the sync finalizes.
  std::vector<std::pair<std::string, ModuleParams>> deferred_changes_;

  // Responder side.
  std::vector<StateRequest> pending_requests_;
  std::vector<StateRequest> inflight_requests_;
  bool refresh_inflight_ = false;

  std::uint64_t snapshots_served_ = 0;
  std::uint64_t sync_retries_ = 0;
  std::uint64_t refresh_switches_ = 0;
  std::uint64_t stale_syncs_dropped_ = 0;
  std::uint64_t replayed_from_snapshot_ = 0;
};

}  // namespace dpu
