// Replacement substrate — the reusable facade/inner interception machinery
// behind every "repl" mechanism (paper §4 structure, §5 Algorithm 1).
//
// The paper's central claim is that dynamic update is a *structural*
// property of a service-based stack: the replacement module needs only the
// *specification* of the service it replaces.  This header makes the
// structure reusable: everything in Algorithm 1 that is not specific to
// atomic broadcast lives here, and a per-service facade module supplies only
// the service interface plumbing (how to transmit a wrapped payload through
// the inner service, and what to do when a new inner version appears).
//
// Shared pieces:
//  * `ReplacementFacadeBase` — Module + UpdateMechanism base holding the
//    Algorithm-1 state (seqNumber, the undelivered set, the current inner
//    module), the wrap/filter/unwrap wire format (byte-identical to the
//    pre-extraction Repl-ABcast format), the switch sequencing of lines
//    10-16 (unbind -> create_module -> bind -> reissue), version accounting,
//    trace markers and UpdateApi registration.
//  * `CrossVersionDedup` — per-origin duplicate suppression across protocol
//    versions, for facades over services without a total order (rbcast):
//    where Repl-ABcast can discard stale-version messages (the total order
//    makes the discard consistent everywhere), an unordered service must
//    accept any version's copy and deduplicate by message id instead.
//
// Three facades instantiate the substrate: `ReplAbcastModule`
// (repl/repl_abcast.hpp, Algorithm 1 verbatim), `ReplRbcastModule`
// (repl/repl_rbcast.hpp, reliable broadcast) and `ReplGmModule`
// (repl/repl_gm.hpp, group membership).  `ReplConsensusModule` keeps its own
// machinery: consensus is multi-stream and migrates lazily per stream, a
// different algorithm (see repl/repl_consensus.hpp).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/module.hpp"
#include "core/stack.hpp"
#include "repl/update.hpp"
#include "util/ids.hpp"

namespace dpu {

/// Encodes ModuleParams into a change message so every stack creates the new
/// protocol with identical parameters.
void encode_module_params(BufWriter& w, const ModuleParams& params);
[[nodiscard]] ModuleParams decode_module_params(BufReader& r);

/// Per-origin duplicate suppression across protocol versions and
/// incarnations.  Message ids from one origin are monotonically increasing
/// within one incarnation epoch (the facade's id counter never resets on a
/// switch), but may *arrive* out of order across versions — two inner
/// protocol instances are independent transports, and reissued messages
/// carry their original id.  A watermark (`next`) plus an ahead-set is both
/// correct for that arrival order and bounded: `next` only advances through
/// contiguously seen ids, so an id below it was definitely seen.
class CrossVersionDedup {
 public:
  /// Sized for `world` origins; ids start at each origin's incarnation base.
  void reset(std::size_t world);

  /// Returns true on first sighting of `id`, false for a duplicate.
  [[nodiscard]] bool mark_seen(const MsgId& id);

 private:
  struct EpochWindow {
    std::uint64_t next = 1;         ///< lowest id not yet seen contiguously
    std::set<std::uint64_t> ahead;  ///< seen ids beyond `next`
  };
  struct Origin {
    std::uint64_t epoch = 0;
    EpochWindow cur;
    /// Earlier incarnations' windows: late cross-version copies of a dead
    /// incarnation's messages must still dedup (and still deliver once).
    std::map<std::uint64_t, EpochWindow> old_epochs;
  };
  std::vector<Origin> origins_;
};

/// Base of the per-service replacement facades: Algorithm 1's state and
/// switch sequencing, generic over the intercepted service.
///
/// A facade module provides the *facade* service that applications and
/// dependent protocols call, and requires the *inner* service that the real
/// protocol binds to; inner protocol modules are completely unaware that
/// replacement exists.  Subclasses implement the service-interface plumbing
/// (the pure virtuals below); everything else — wrapping, the undelivered
/// set, the totally-or-reliably-coordinated switch, reissue, version
/// accounting, UpdateApi registration, retirement — is shared.
class ReplacementFacadeBase : public Module, public UpdateMechanism {
 public:
  struct FacadeConfig {
    /// Service name applications call (paper: the interface r-p).
    std::string facade_service;
    /// Service name (or, with `versioned_inner`, the name prefix) the real
    /// protocol binds to (paper: p).
    std::string inner_service;
    /// When true, each version binds a fresh "<inner_service>#<sn>" slot
    /// instead of rebinding one fixed slot.  Facades whose response
    /// interface carries no version information (GM views) use this to
    /// listen to exactly the current version's upcalls.
    bool versioned_inner = false;
    /// Protocol (library name) installed at start.
    std::string initial_protocol;
    ModuleParams initial_params;
    /// If > 0, destroy a replaced module this long after the switch
    /// (extension; 0 keeps old modules in the stack forever, like the
    /// paper).
    Duration retire_after = 0;
  };

  // ---- UpdateMechanism (repl/update.hpp) ----------------------------------
  [[nodiscard]] const std::string& update_service() const override {
    return fcfg_.facade_service;
  }
  void request_update(const std::string& protocol,
                      const ModuleParams& params) override {
    request_change(protocol, params);
  }
  [[nodiscard]] UpdateStatus update_status() const override {
    return UpdateStatus{cur_protocol_, seq_number_};
  }

  // ---- Wire format --------------------------------------------------------
  // Byte-identical to the pre-extraction Repl-ABcast format (public so tests
  // can pin it and facades' free helpers can parse it):
  //   data:   u8 kNil         | varint sn | MsgId | blob payload
  //   change: u8 kNewProtocol | varint sn | string protocol | params
  enum Tag : std::uint8_t { kNil = 0, kNewProtocol = 1 };

  struct Unwrapped {
    Tag tag = kNil;
    std::uint64_t sn = 0;
    // tag == kNil:
    MsgId id;
    Bytes payload;
    // tag == kNewProtocol:
    std::string protocol;
    ModuleParams params;
  };

  /// Data wrapper parse result of the zero-copy variant: `payload` is a
  /// slice of the wire buffer, not a copy.
  struct UnwrappedData {
    std::uint64_t sn = 0;
    MsgId id;
    Payload payload;
  };

  [[nodiscard]] static Payload wrap_data(std::uint64_t sn, const MsgId& id,
                                         const Payload& payload);
  /// Parses either message kind; throws CodecError on malformed input.
  [[nodiscard]] static Unwrapped unwrap(const Bytes& wire);
  [[nodiscard]] static Unwrapped unwrap(const Payload& wire);
  /// Parses a data message without copying the payload (a slice of `wire`);
  /// throws CodecError on malformed input or a change-message tag.
  [[nodiscard]] static UnwrappedData unwrap_data(const Payload& wire);

  // ---- Introspection ------------------------------------------------------
  [[nodiscard]] std::uint64_t seq_number() const { return seq_number_; }
  [[nodiscard]] const std::string& current_protocol() const {
    return cur_protocol_;
  }
  [[nodiscard]] std::size_t undelivered_count() const {
    return undelivered_.size();
  }
  [[nodiscard]] std::uint64_t switches_completed() const {
    return switches_completed_;
  }
  [[nodiscard]] std::uint64_t stale_discarded() const {
    return stale_discarded_;
  }
  [[nodiscard]] std::uint64_t reissued_total() const { return reissued_total_; }

 protected:
  ReplacementFacadeBase(Stack& stack, std::string instance_name,
                        FacadeConfig config);

  /// Change message under the current version number (Algorithm 1 line 6).
  [[nodiscard]] Payload wrap_change(const std::string& protocol,
                                    const ModuleParams& params) const;

  // ---- Algorithm 1 operations ---------------------------------------------

  /// Registers with the stack's update manager (when present) and installs
  /// the initial protocol as version 0.  Call from the subclass's start().
  void facade_start();
  /// Unregisters and cancels retirement timers.  Call from stop().
  void facade_stop();

  /// Fresh globally-unique id for a facade message of this stack (line 8's
  /// id; the counter is continuous across switches and starts at the
  /// incarnation's epoch base).
  [[nodiscard]] MsgId next_msg_id() { return MsgId{env().node_id(), next_local_++}; }

  /// Lines 8 / 19-20: the undelivered set of this stack's own messages.
  /// `ctx` is facade-defined per-message context carried to send_inner_data
  /// on reissue (the rbcast facade stores the client channel; abcast passes
  /// 0).
  void track_undelivered(const MsgId& id, Payload payload, std::uint64_t ctx);
  /// Removes `id` from the undelivered set; returns whether it was tracked.
  bool settle_undelivered(const MsgId& id);

  /// Lines 5-6: validates `protocol` against the registry, emits the
  /// change-requested marker and transmits the change message through the
  /// current inner version.  Any stack may call this; when/where the switch
  /// happens is the coordination contract of the facade (total order for
  /// abcast/gm, reliable delivery for rbcast).
  void request_change(const std::string& protocol, const ModuleParams& params);

  /// Lines 10-16: performs the switch on this stack — bump seqNumber, unbind
  /// the old inner module (it stays in the stack and may still respond),
  /// create_module the new protocol (recursively creating providers for
  /// missing services, lines 22-28 live in Stack::create_module), let the
  /// subclass re-attach (on_inner_installed), then re-issue every
  /// undelivered message through the new version.
  void perform_switch(const std::string& protocol, const ModuleParams& params);

  /// Inner slot name of version `sn` ("<inner_service>" fixed, or
  /// "<inner_service>#<sn>" when versioned).
  [[nodiscard]] std::string inner_service_name(std::uint64_t sn) const;
  /// Current version's inner slot name.
  [[nodiscard]] std::string inner_service_name() const {
    return inner_service_name(seq_number_);
  }
  /// Cross-stack-identical instance name of version `sn` of `protocol`.
  [[nodiscard]] std::string versioned_instance(const std::string& protocol,
                                               std::uint64_t sn) const;

  // ---- Service-specific plumbing (subclass hooks) -------------------------

  /// Transmits a change message through the current inner version (line 6).
  virtual void send_inner_change(Payload wrapped) = 0;
  /// Transmits a data message through the current inner version (lines 9 and
  /// 16); `ctx` is whatever track_undelivered stored for this message.
  virtual void send_inner_data(Payload wrapped, std::uint64_t ctx) = 0;
  /// Called after a new inner version is created and bound, before the
  /// undelivered set is reissued through it — re-attach listeners/channels
  /// here.  `sn` is the new version, 0 for the initial installation.
  virtual void on_inner_installed(Module* created, std::uint64_t sn);
  /// Called right before a replaced inner module is destroyed (the
  /// retire_after extension) — drop any direct references to it here.
  virtual void on_inner_retired(Module* retired);
  /// TraceKind::kCustom detail prefixes ("<marker>:<protocol>" on request,
  /// "<marker>:<protocol>:sn=<n>" on completion); benches and the scenario
  /// engine locate switch windows by scanning for these.
  [[nodiscard]] virtual const char* change_requested_marker() const = 0;
  [[nodiscard]] virtual const char* switch_done_marker() const = 0;

  // ---- Shared state (subclass-visible) ------------------------------------
  FacadeConfig fcfg_;
  UpdateManagerModule* manager_ = nullptr;  // null when composed standalone

  std::uint64_t seq_number_ = 0;  // Algorithm 1 line 4
  std::string cur_protocol_;
  Module* cur_module_ = nullptr;

  std::uint64_t switches_completed_ = 0;
  std::uint64_t stale_discarded_ = 0;
  std::uint64_t reissued_total_ = 0;

 private:
  struct UndeliveredEntry {
    Payload payload;
    std::uint64_t ctx = 0;
  };

  std::uint64_t next_local_ = 1;  // id generator for this stack's messages
  /// Algorithm 1 line 2: this stack's messages not yet delivered back to it.
  std::map<MsgId, UndeliveredEntry> undelivered_;
  std::vector<std::unique_ptr<TimerSlot>> retire_timers_;
};

}  // namespace dpu
