// Repl-ABcast — the paper's replacement module for atomic broadcast
// (Section 4 structure, Section 5 Algorithm 1).
//
// Structure (Figure 3): this module provides the *facade* abcast service
// that applications and dependent protocols (e.g. GM) call, and requires the
// *inner* abcast service that the real protocol binds to.  It intercepts
// both directions:
//   * calls     — facade abcast()  -> wrap -> inner abcast()
//   * responses — inner adeliver() -> filter/unwrap -> facade adeliver()
// The inner protocol modules are completely unaware that replacement exists;
// only the abcast *specification* (§5.1) is assumed — the paper's modularity
// claim versus Maestro and Graceful Adaptation.
//
// Algorithm 1 (code of stack i), mapped onto this class:
//   1-4   state:            undelivered_, cur (the bound inner module),
//                            seq_number_
//   5-6   changeABcast(p):  change_abcast()   -> inner ABcast(newABcast,sn,p)
//   7-9   rABcast(m):       abcast(m)         -> undelivered_ += m;
//                                                inner ABcast(nil,sn,m)
//   10-16 Adeliver(newABcast,sn,prot):
//                            adeliver(tag=kNewAbcast): ++seq_number_;
//                            unbind old; create_module(prot) (recursively
//                            creating providers for missing services,
//                            lines 22-28 live in Stack::create_module);
//                            bind new; re-ABcast all undelivered_
//   17-21 Adeliver(nil,sn,m):
//                            adeliver(tag=kNil): discard if sn stale;
//                            undelivered_ -= m; facade rAdeliver(m)
//
// The old module stays in the stack after unbinding (it may still deliver
// responses, which line 18 discards); `retire_after` optionally destroys it
// once it can no longer matter — an extension over the paper, off by
// default.
#pragma once

#include <map>
#include <string>

#include "abcast/abcast.hpp"
#include "core/module.hpp"
#include "core/stack.hpp"
#include "repl/update.hpp"

namespace dpu {

struct ReplAbcastConfig {
  /// Service name applications call (paper: the interface r-p).
  std::string facade_service = kAbcastService;
  /// Service name the real protocol binds to (paper: p).
  std::string inner_service = kAbcastInnerService;
  /// Protocol (library name, e.g. "abcast.ct") installed at start.
  std::string initial_protocol = "abcast.ct";
  ModuleParams initial_params;
  /// If > 0, destroy a replaced module this long after the switch
  /// (extension; 0 keeps old modules in the stack forever, like the paper).
  Duration retire_after = 0;
};

class ReplAbcastModule final : public Module,
                               public AbcastApi,
                               public AbcastListener,
                               public UpdateMechanism {
 public:
  using Config = ReplAbcastConfig;

  static ReplAbcastModule* create(Stack& stack, Config config = Config{});

  ReplAbcastModule(Stack& stack, std::string instance_name, Config config);

  void start() override;
  void stop() override;

  // ---- Facade AbcastApi (Algorithm 1 lines 7-9: rABcast) ----
  void abcast(Payload payload) override;

  // ---- Inner-service listener (Algorithm 1 lines 10-21: Adeliver) ----
  void adeliver(NodeId sender, const Bytes& inner_payload) override;

  /// Algorithm 1 lines 5-6: requests a global, totally-ordered switch of the
  /// inner ABcast protocol to `protocol` (a library name).  Any stack may
  /// call this; every stack performs the switch at the same point of the
  /// ABcast delivery order.
  void change_abcast(const std::string& protocol,
                     const ModuleParams& params = ModuleParams());

  // ---- UpdateMechanism (repl/update.hpp): the same switch, driven through
  // the service-generic control plane ----------------------------------------
  [[nodiscard]] const std::string& update_service() const override {
    return config_.facade_service;
  }
  [[nodiscard]] const char* update_mechanism_name() const override {
    return "repl";
  }
  void request_update(const std::string& protocol,
                      const ModuleParams& params) override {
    change_abcast(protocol, params);
  }
  [[nodiscard]] UpdateStatus update_status() const override {
    return UpdateStatus{cur_protocol_, seq_number_};
  }

  // ---- Introspection --------------------------------------------------------
  [[nodiscard]] std::uint64_t seq_number() const { return seq_number_; }
  [[nodiscard]] const std::string& current_protocol() const {
    return cur_protocol_;
  }
  [[nodiscard]] std::size_t undelivered_count() const {
    return undelivered_.size();
  }
  [[nodiscard]] std::uint64_t switches_completed() const {
    return switches_completed_;
  }
  [[nodiscard]] std::uint64_t stale_discarded() const {
    return stale_discarded_;
  }
  [[nodiscard]] std::uint64_t reissued_total() const { return reissued_total_; }

  /// Trace detail strings emitted as TraceKind::kCustom markers; benches
  /// locate switch windows by scanning for these.
  static constexpr char kTraceChangeRequested[] = "repl-change-requested";
  static constexpr char kTraceSwitchDone[] = "repl-switch-done";

 private:
  enum Tag : std::uint8_t { kNil = 0, kNewAbcast = 1 };

  void inner_abcast(Payload wrapped);
  void perform_switch(const std::string& protocol, const ModuleParams& params);
  [[nodiscard]] std::string versioned_instance(const std::string& protocol,
                                               std::uint64_t sn) const;

  Config config_;
  ServiceRef<AbcastApi> inner_;
  UpcallRef<AbcastListener> up_;
  UpdateManagerModule* manager_ = nullptr;  // null when composed standalone

  std::uint64_t seq_number_ = 0;  // Algorithm 1 line 4
  std::uint64_t next_local_ = 1;  // id generator for this stack's messages
  /// Algorithm 1 line 2: this stack's messages not yet rAdelivered locally.
  std::map<MsgId, Payload> undelivered_;
  std::string cur_protocol_;
  Module* cur_module_ = nullptr;

  std::uint64_t switches_completed_ = 0;
  std::uint64_t stale_discarded_ = 0;
  std::uint64_t reissued_total_ = 0;
  std::vector<std::unique_ptr<TimerSlot>> retire_timers_;
};

}  // namespace dpu
