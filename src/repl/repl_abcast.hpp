// Repl-ABcast — the paper's replacement module for atomic broadcast
// (Section 4 structure, Section 5 Algorithm 1).
//
// Structure (Figure 3): this module provides the *facade* abcast service
// that applications and dependent protocols (e.g. GM) call, and requires the
// *inner* abcast service that the real protocol binds to.  It intercepts
// both directions:
//   * calls     — facade abcast()  -> wrap -> inner abcast()
//   * responses — inner adeliver() -> filter/unwrap -> facade adeliver()
// The inner protocol modules are completely unaware that replacement exists;
// only the abcast *specification* (§5.1) is assumed — the paper's modularity
// claim versus Maestro and Graceful Adaptation.
//
// The wrap/filter/unwrap plumbing, undelivered tracking, switch sequencing
// and version accounting live in the shared replacement substrate
// (repl/facade.hpp, ReplacementFacadeBase); this class supplies only the
// abcast-specific parts of Algorithm 1 (code of stack i):
//   1-4   state:            base (undelivered set, seq_number, cur module)
//   5-6   changeABcast(p):  change_abcast()   -> inner ABcast(newABcast,sn,p)
//   7-9   rABcast(m):       abcast(m)         -> undelivered += m;
//                                                inner ABcast(nil,sn,m)
//   10-16 Adeliver(newABcast,sn,prot):
//                            adeliver(tag=kNewProtocol): perform_switch —
//                            unbind old; create_module(prot) (recursively
//                            creating providers for missing services,
//                            lines 22-28 live in Stack::create_module);
//                            bind new; re-ABcast all undelivered
//   17-21 Adeliver(nil,sn,m):
//                            adeliver(tag=kNil): discard if sn stale;
//                            undelivered -= m; facade rAdeliver(m)
//
// The stale-discard of line 18 is sound *because* abcast is totally ordered:
// every stack switches at the same point of the delivery order, so a message
// that is stale here is stale everywhere, and its origin re-issues it under
// the new version (line 16).  Facades over unordered services (repl_rbcast)
// must deduplicate by message id instead.
//
// The old module stays in the stack after unbinding (it may still deliver
// responses, which line 18 discards); `retire_after` optionally destroys it
// once it can no longer matter — an extension over the paper, off by
// default.
#pragma once

#include <string>

#include "abcast/abcast.hpp"
#include "core/module.hpp"
#include "core/stack.hpp"
#include "repl/facade.hpp"
#include "repl/update.hpp"

namespace dpu {

struct ReplAbcastConfig {
  /// Service name applications call (paper: the interface r-p).
  std::string facade_service = kAbcastService;
  /// Service name the real protocol binds to (paper: p).
  std::string inner_service = kAbcastInnerService;
  /// Protocol (library name, e.g. "abcast.ct") installed at start.
  std::string initial_protocol = "abcast.ct";
  ModuleParams initial_params;
  /// If > 0, destroy a replaced module this long after the switch
  /// (extension; 0 keeps old modules in the stack forever, like the paper).
  Duration retire_after = 0;
};

class ReplAbcastModule final : public ReplacementFacadeBase,
                               public AbcastApi,
                               public AbcastListener {
 public:
  using Config = ReplAbcastConfig;

  static ReplAbcastModule* create(Stack& stack, Config config = Config{});

  ReplAbcastModule(Stack& stack, std::string instance_name, Config config);

  void start() override;
  void stop() override;

  // ---- Facade AbcastApi (Algorithm 1 lines 7-9: rABcast) ----
  void abcast(Payload payload) override;

  // ---- Inner-service listener (Algorithm 1 lines 10-21: Adeliver) ----
  void adeliver(NodeId sender, const Bytes& inner_payload) override;

  /// Algorithm 1 lines 5-6: requests a global, totally-ordered switch of the
  /// inner ABcast protocol to `protocol` (a library name).  Any stack may
  /// call this; every stack performs the switch at the same point of the
  /// ABcast delivery order.
  ///
  /// DEPRECATED: new code should use the service-generic control plane —
  /// `UpdateApi::request_update("abcast", protocol, params)` on the stack's
  /// "update" service — which validates against the ProtocolRegistry and
  /// emits the generic convergence markers (see README migration note).
  void change_abcast(const std::string& protocol,
                     const ModuleParams& params = ModuleParams()) {
    request_change(protocol, params);
  }

  // ---- UpdateMechanism (repl/update.hpp): the same switch, driven through
  // the service-generic control plane ----------------------------------------
  [[nodiscard]] const char* update_mechanism_name() const override {
    return "repl";
  }

  /// Trace detail strings emitted as TraceKind::kCustom markers; benches
  /// locate switch windows by scanning for these.
  static constexpr char kTraceChangeRequested[] = "repl-change-requested";
  static constexpr char kTraceSwitchDone[] = "repl-switch-done";

 protected:
  // ---- ReplacementFacadeBase hooks ----------------------------------------
  void send_inner_change(Payload wrapped) override { inner_abcast(std::move(wrapped)); }
  void send_inner_data(Payload wrapped, std::uint64_t /*ctx*/) override {
    inner_abcast(std::move(wrapped));
  }
  /// Snapshot replay (state_sync = kLog): re-delivers the peer's recorded
  /// history to this stack's clients in the original total order, so a
  /// recovered incarnation's delivery sequence audits clean from the
  /// beginning of history.
  void replay_delivered(const MsgId& id, const Payload& payload) override;
  [[nodiscard]] const char* change_requested_marker() const override {
    return kTraceChangeRequested;
  }
  [[nodiscard]] const char* switch_done_marker() const override {
    return kTraceSwitchDone;
  }

 private:
  void inner_abcast(Payload wrapped);

  ServiceRef<AbcastApi> inner_;
  UpcallRef<AbcastListener> up_;
};

}  // namespace dpu
