// Maestro-style baseline: full-stack replacement with application blocking.
//
// Models the approach of van Renesse et al.'s Maestro as §4.2 describes it:
// "Maestro supports only the replacement of complete protocol stacks ...
// The SS module is in charge to dynamically replace stacks.  Its main role
// is to (1) finalize the local old stack, and (2) coordinate the start of
// the new stack as soon as possible."
//
// Mechanics of this implementation:
//  * A switch marker is sent through the running ABcast (a totally-ordered
//    cut, standing in for Maestro's group-membership-based coordination).
//  * On delivering the marker, the stack BLOCKS the application (subsequent
//    abcast calls are queued), finalizes the old protocol layer — the
//    ABcast module *and* its consensus substrate are stopped and destroyed,
//    since Maestro cannot replace a single protocol — and rebuilds fresh
//    instances.
//  * Stacks exchange READY messages; when all stacks are ready, the
//    application is unblocked, queued calls and in-flight messages are
//    re-issued through the new stack.
//
// The measurable contrast with Repl-ABcast (paper §5.3): the application is
// blocked for the whole finalize+rebuild+barrier window, and the rebuild
// includes warm-up of the whole protocol layer.  Like Maestro itself, the
// coordination here assumes the switch window is failure-free.
#pragma once

#include <deque>
#include <map>
#include <string>

#include "abcast/abcast.hpp"
#include "core/module.hpp"
#include "core/stack.hpp"
#include "net/services.hpp"
#include "repl/update.hpp"

namespace dpu {

struct MaestroConfig {
  std::string facade_service = kAbcastService;
  std::string inner_service = kAbcastInnerService;
  std::string initial_protocol = "abcast.ct";
  /// Consensus provider rebuilt together with the ABcast layer.
  std::string consensus_protocol = "consensus.ct";
  ModuleParams initial_params;
};

class MaestroSwitchModule final : public Module,
                                  public AbcastApi,
                                  public AbcastListener,
                                  public UpdateMechanism {
 public:
  using Config = MaestroConfig;

  static MaestroSwitchModule* create(Stack& stack, Config config = Config{});

  MaestroSwitchModule(Stack& stack, std::string instance_name, Config config);

  void start() override;
  void stop() override;

  // Facade AbcastApi: forwards, or queues while the stack is switching.
  void abcast(Payload payload) override;

  // Inner listener.
  void adeliver(NodeId sender, const Bytes& inner_payload) override;

  /// Requests a full-stack switch to `protocol` (totally ordered cut).
  ///
  /// DEPRECATED: new code should use the service-generic control plane —
  /// `UpdateApi::request_update("abcast", protocol, params)` — which
  /// validates against the ProtocolRegistry and emits the generic
  /// convergence markers (see README migration note).
  void change_stack(const std::string& protocol,
                    const ModuleParams& params = ModuleParams());

  // ---- UpdateMechanism (repl/update.hpp) -----------------------------------
  [[nodiscard]] const std::string& update_service() const override {
    return config_.facade_service;
  }
  [[nodiscard]] const char* update_mechanism_name() const override {
    return "maestro";
  }
  void request_update(const std::string& protocol,
                      const ModuleParams& params) override {
    change_stack(protocol, params);
  }
  [[nodiscard]] UpdateStatus update_status() const override {
    return UpdateStatus{cur_protocol_, version_};
  }

  [[nodiscard]] bool blocked() const { return blocked_; }
  [[nodiscard]] std::uint64_t switches_completed() const {
    return switches_completed_;
  }
  /// Cumulative wall/virtual time the application spent blocked.
  [[nodiscard]] Duration total_blocked_time() const {
    return total_blocked_time_;
  }
  [[nodiscard]] std::uint64_t calls_queued_while_blocked() const {
    return calls_queued_;
  }

  static constexpr char kTraceBlocked[] = "maestro-app-blocked";
  static constexpr char kTraceUnblocked[] = "maestro-app-unblocked";

 private:
  enum Tag : std::uint8_t { kNil = 0, kSwitchMarker = 1 };

  void inner_abcast_wrapped(const MsgId& id, const Payload& payload);
  void perform_local_switch(const std::string& protocol,
                            const ModuleParams& params);
  void on_ready(NodeId from, const Payload& data);
  void maybe_unblock();

  Config config_;
  ServiceRef<AbcastApi> inner_;
  ServiceRef<Rp2pApi> rp2p_;
  UpcallRef<AbcastListener> up_;
  UpdateManagerModule* manager_ = nullptr;  // null when composed standalone
  ChannelId ready_channel_;

  std::uint64_t version_ = 0;  // sn: stamps messages; ++ at each stack switch
  std::uint64_t next_local_ = 1;
  std::map<MsgId, Payload> undelivered_;
  std::string cur_protocol_;

  bool blocked_ = false;
  TimePoint blocked_since_ = 0;
  Duration total_blocked_time_ = 0;
  std::deque<Payload> queued_while_blocked_;
  std::set<NodeId> ready_from_;
  std::uint64_t calls_queued_ = 0;
  std::uint64_t switches_completed_ = 0;
};

}  // namespace dpu
