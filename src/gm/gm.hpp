// GM — group membership on top of atomic broadcast (paper Figure 4: "the GM
// module provides a group membership service that maintains consistent
// membership among all group members; the module requires the atomic
// broadcast service").
//
// Membership operations (join/leave/exclude) are published on the
// totally-ordered channel; every stack applies them in delivery order, so
// all stacks step through the same sequence of views.  GM is the canonical
// *dependent* protocol of the evaluation: it keeps providing its service —
// unmodified and unaware — while the ABcast protocol underneath it is being
// replaced (paper abstract: "all middleware protocols, including those that
// depend on the updated protocols, provide service correctly ... while the
// global update takes place").
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "app/topics.hpp"
#include "core/module.hpp"
#include "core/stack.hpp"

namespace dpu {

inline constexpr char kGmService[] = "gm";

/// A membership view: identical sequence of views on every stack.
struct View {
  std::uint64_t id = 0;
  std::vector<NodeId> members;  // sorted

  [[nodiscard]] bool contains(NodeId node) const {
    return std::binary_search(members.begin(), members.end(), node);
  }
  [[nodiscard]] std::string str() const;
};

struct GmApi {
  virtual ~GmApi() = default;
  /// Requests `node` be added to the group (totally ordered, applied
  /// everywhere).
  virtual void gm_join(NodeId node) = 0;
  /// Requests `node` be removed voluntarily.
  virtual void gm_leave(NodeId node) = 0;
  /// Requests `node` be removed forcibly (e.g. after suspicion).
  virtual void gm_exclude(NodeId node) = 0;
  /// Current view (synchronous query).
  [[nodiscard]] virtual const View& gm_view() const = 0;
};

struct GmListener {
  virtual ~GmListener() = default;
  virtual void on_view(const View& view) = 0;
};

class GmModule final : public Module, public GmApi {
 public:
  static constexpr char kProtocolName[] = "gm.abcast";
  static constexpr char kTopic[] = "gm";

  /// `topic` is the totally-ordered channel the instance publishes its ops
  /// on.  Static compositions keep the default; dynamically created
  /// instances (replacement versions) use their cross-stack-identical
  /// instance name so two coexisting versions never share a topic.
  static GmModule* create(Stack& stack, const std::string& service = kGmService,
                          const std::string& topic = kTopic);

  /// Registers "gm.abcast": requires topics.  Dynamic instances take their
  /// topic (and instance name) from the "instance" param.
  static void register_protocol(ProtocolLibrary& library);

  GmModule(Stack& stack, std::string instance_name, std::string service,
           std::string topic);

  void start() override;
  void stop() override;

  // GmApi
  void gm_join(NodeId node) override;
  void gm_leave(NodeId node) override;
  void gm_exclude(NodeId node) override;
  [[nodiscard]] const View& gm_view() const override { return view_; }

  /// All views installed so far, in order (for consistency checks).
  [[nodiscard]] const std::vector<View>& history() const { return history_; }

 private:
  enum Op : std::uint8_t { kJoin = 0, kLeave = 1, kExclude = 2 };

  void publish_op(Op op, NodeId node);
  void on_op(NodeId sender, const Bytes& payload);

  ServiceRef<TopicsApi> topics_;
  UpcallRef<GmListener> up_;
  std::string topic_;
  View view_;
  std::vector<View> history_;
};

}  // namespace dpu
