#include "gm/gm.hpp"

#include <sstream>

#include "util/log.hpp"

namespace dpu {

std::string View::str() const {
  std::ostringstream os;
  os << "v" << id << "{";
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (i != 0) os << ",";
    os << members[i];
  }
  os << "}";
  return os.str();
}

GmModule* GmModule::create(Stack& stack, const std::string& service,
                           const std::string& topic) {
  auto* m = stack.emplace_module<GmModule>(stack, service, service, topic);
  stack.bind<GmApi>(service, m, m);
  return m;
}

void GmModule::register_protocol(ProtocolLibrary& library) {
  library.register_protocol(ProtocolInfo{
      .protocol = kProtocolName,
      .default_service = kGmService,
      .requires_services = {kTopicsService},
      .factory = [](Stack& stack, const std::string& provide_as,
                    const ModuleParams& params) -> Module* {
        // Dynamic instances publish on a per-version topic derived from the
        // cross-stack-identical instance name, so coexisting replacement
        // versions never share the ordered channel.
        const std::string instance = params.get("instance");
        if (instance.empty()) return create(stack, provide_as);
        auto* m = stack.emplace_module<GmModule>(stack, instance, provide_as,
                                                 instance);
        stack.bind<GmApi>(provide_as, m, m);
        return m;
      }});
}

GmModule::GmModule(Stack& stack, std::string instance_name, std::string service,
                   std::string topic)
    : Module(stack, std::move(instance_name)),
      topics_(stack.require<TopicsApi>(kTopicsService)),
      up_(stack.upcalls<GmListener>(service)),
      topic_(std::move(topic)) {}

void GmModule::start() {
  // Initial view: the full static world (paper model: one module per
  // machine); GM layers dynamic logical membership on top.
  view_.id = 0;
  view_.members.clear();
  for (NodeId i = 0; i < env().world_size(); ++i) view_.members.push_back(i);
  history_.push_back(view_);

  topics_.call([this](TopicsApi& topics) {
    topics.subscribe(topic_, [this](NodeId sender, const Bytes& payload) {
      on_op(sender, payload);
    });
  });
}

void GmModule::stop() {
  topics_.call([this](TopicsApi& topics) { topics.unsubscribe(topic_); });
}

void GmModule::gm_join(NodeId node) { publish_op(kJoin, node); }
void GmModule::gm_leave(NodeId node) { publish_op(kLeave, node); }
void GmModule::gm_exclude(NodeId node) { publish_op(kExclude, node); }

void GmModule::publish_op(Op op, NodeId node) {
  BufWriter w(8);
  w.put_u8(op);
  w.put_u32(node);
  topics_.call([this, bytes = w.take_payload()](TopicsApi& topics) mutable {
    topics.publish(topic_, std::move(bytes));
  });
}

void GmModule::on_op(NodeId sender, const Bytes& payload) {
  (void)sender;
  Op op{};
  NodeId node = kNoNode;
  try {
    BufReader r(payload);
    op = static_cast<Op>(r.get_u8());
    node = r.get_u32();
    r.expect_done();
  } catch (const CodecError& e) {
    DPU_LOG(kWarn, "gm") << "s" << env().node_id() << " malformed op: "
                         << e.what();
    return;
  }
  // Apply deterministically; no-op operations do not create a view, so all
  // stacks agree on the view sequence (same total order, same state).
  View next = view_;
  if (op == kJoin) {
    if (next.contains(node)) return;
    next.members.insert(
        std::lower_bound(next.members.begin(), next.members.end(), node),
        node);
  } else {
    if (!next.contains(node)) return;
    next.members.erase(
        std::lower_bound(next.members.begin(), next.members.end(), node));
  }
  next.id = view_.id + 1;
  view_ = std::move(next);
  history_.push_back(view_);
  DPU_LOG(kInfo, "gm") << "s" << env().node_id() << " installs "
                       << view_.str();
  up_.notify([this](GmListener& l) { l.on_view(view_); });
}

}  // namespace dpu
