// Totally-ordered chat on the real-time (threaded) engine, with a protocol
// upgrade AND a crash in the middle of the conversation.
//
// Unlike the other examples this one runs on dpu::rt — every stack has its
// own OS thread and real wall-clock timers — demonstrating that the same
// protocol modules and the same Algorithm 1 run outside the simulator.  A
// participant crashes right after the upgrade is requested; the survivors
// finish the switch and keep chatting in a consistent order.
//
//   $ ./chat_upgrade
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "app/stack_builder.hpp"
#include "rt/rt_world.hpp"

using namespace dpu;

namespace {

struct ChatLog final : AbcastListener {
  std::mutex mutex;
  std::vector<std::string> lines;
  void adeliver(NodeId sender, const Bytes& payload) override {
    const std::lock_guard<std::mutex> lock(mutex);
    lines.push_back("s" + std::to_string(sender) + "> " + to_string(payload));
  }
  std::vector<std::string> snapshot() {
    const std::lock_guard<std::mutex> lock(mutex);
    return lines;
  }
};

}  // namespace

int main() {
  constexpr std::size_t kMembers = 4;
  StandardStackOptions options;
  options.fd.heartbeat_interval = 20 * kMillisecond;
  options.fd.initial_timeout = 200 * kMillisecond;
  options.with_gm = false;
  ProtocolLibrary library = make_standard_library(options);

  RtWorld world(RtConfig{.num_stacks = kMembers, .seed = 99}, &library);
  std::vector<StandardStack> stacks;
  std::vector<ChatLog> logs(kMembers);
  for (NodeId i = 0; i < kMembers; ++i) {
    stacks.push_back(build_standard_stack(world.stack(i), options));
    world.stack(i).listen<AbcastListener>(kAbcastService, &logs[i], nullptr);
  }
  world.start();

  auto say = [&](NodeId who, const std::string& text) {
    world.post_to(who, [&world, who, text]() {
      world.stack(who).require<AbcastApi>(kAbcastService)
          .call([&text](AbcastApi& api) { api.abcast(to_bytes(text)); });
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  };

  say(0, "anyone up for upgrading the broadcast protocol?");
  say(1, "sure, but I have messages in flight");
  say(2, "me too, do not lose them");

  std::printf("--> stack 3 requests the upgrade to abcast.ct, then crashes\n");
  world.call_on(3, [&]() { stacks[3].repl->change_abcast("abcast.ct"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  world.crash(3);

  say(0, "switch done on my side");
  say(1, "mine too, same order as always");
  say(2, "and the crashed member did not take us down");

  // Let the survivors settle.
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  world.stop();

  auto reference = logs[0].snapshot();
  std::printf("\nchat as delivered on stack 0 (%zu lines):\n",
              reference.size());
  for (const auto& line : reference) std::printf("  %s\n", line.c_str());

  bool consistent = true;
  for (NodeId i = 1; i < 3; ++i) {  // survivors only
    if (logs[i].snapshot() != reference) consistent = false;
  }
  std::printf("\nsurvivors delivered identical transcripts: %s\n",
              consistent ? "yes" : "NO (bug!)");
  std::printf("protocol after upgrade: %s (seqNumber=%llu)\n",
              stacks[0].repl->current_protocol().c_str(),
              static_cast<unsigned long long>(stacks[0].repl->seq_number()));
  const bool switched = stacks[0].repl->seq_number() == 1;
  return consistent && switched ? 0 : 1;
}
