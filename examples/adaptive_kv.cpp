// Adaptive replicated key-value store.
//
// A 5-replica KV store runs on the totally-ordered channel while the
// underlying atomic broadcast protocol is upgraded twice (CT -> SEQ ->
// TOKEN) under sustained write load.  The example audits, at the end, that
// every replica applied exactly the same operation sequence (identical
// fingerprints) — the paper's "software upgrade without service
// interruption" scenario for a stateful service.
//
//   $ ./adaptive_kv
#include <cstdio>
#include <vector>

#include "app/kv_store.hpp"
#include "app/stack_builder.hpp"
#include "sim/sim_world.hpp"

using namespace dpu;

int main() {
  constexpr std::size_t kReplicas = 5;
  constexpr int kWriters = 5;
  constexpr int kWritesPerWriter = 400;

  StandardStackOptions options;
  ProtocolLibrary library = make_standard_library(options);
  SimWorld world(SimConfig{.num_stacks = kReplicas, .seed = 7}, &library);

  std::vector<StandardStack> stacks;
  std::vector<KvStoreModule*> kv;
  for (NodeId i = 0; i < kReplicas; ++i) {
    stacks.push_back(build_standard_stack(world.stack(i), options));
    kv.push_back(KvStoreModule::create(world.stack(i)));
    world.stack(i).start_all();
  }

  // Sustained write load: every replica issues puts at ~100 ops/s.
  for (int w = 0; w < kWriters; ++w) {
    for (int k = 0; k < kWritesPerWriter; ++k) {
      const auto node = static_cast<NodeId>(w);
      world.at_node((10 + k * 10) * kMillisecond, node, [&kv, node, k]() {
        kv[node]->kv_put("user:" + std::to_string((node * 131 + k) % 64),
                         "v" + std::to_string(node) + "." + std::to_string(k));
      });
    }
  }

  // Two live upgrades while writes are flowing.
  world.at_node(1500 * kMillisecond, 1, [&]() {
    std::printf("t=1.5s  upgrade #1: abcast.ct -> abcast.seq\n");
    stacks[1].repl->change_abcast("abcast.seq");
  });
  world.at_node(3000 * kMillisecond, 3, [&]() {
    std::printf("t=3.0s  upgrade #2: abcast.seq -> abcast.token\n");
    stacks[3].repl->change_abcast("abcast.token");
  });

  world.run_for(30 * kSecond);

  // Consistency audit.
  std::printf("\nreplica audit after %d writes and 2 live upgrades:\n",
              kWriters * kWritesPerWriter);
  bool consistent = true;
  for (NodeId i = 0; i < kReplicas; ++i) {
    std::printf("  replica %u: ops=%llu keys=%zu fingerprint=%016llx\n", i,
                static_cast<unsigned long long>(kv[i]->ops_applied()),
                kv[i]->size(),
                static_cast<unsigned long long>(kv[i]->fingerprint()));
    if (kv[i]->fingerprint() != kv[0]->fingerprint() ||
        kv[i]->ops_applied() != kv[0]->ops_applied()) {
      consistent = false;
    }
  }
  const bool all_applied =
      kv[0]->ops_applied() ==
      static_cast<std::uint64_t>(kWriters * kWritesPerWriter);
  std::printf("\nall replicas identical: %s, no operation lost: %s\n",
              consistent ? "yes" : "NO (bug!)",
              all_applied ? "yes" : "NO (bug!)");
  std::printf("final protocol: %s after %llu switches\n",
              stacks[0].repl->current_protocol().c_str(),
              static_cast<unsigned long long>(
                  stacks[0].repl->switches_completed()));
  return consistent && all_applied ? 0 : 1;
}
