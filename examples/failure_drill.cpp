// Failure drill — the kitchen-sink robustness scenario.
//
// A 5-stack world endures, in one run:
//   * 5% message loss throughout,
//   * a live replacement of the *consensus* protocol (CT -> MR, the paper's
//     future-work extension) under atomic-broadcast load,
//   * a crash of one stack shortly after the switch,
//   * a transient network partition that isolates another stack,
// and finishes with a full property audit: the four ABcast properties
// (validity, uniform agreement, uniform integrity, uniform total order)
// must hold for the survivors over the entire run.
//
//   $ ./failure_drill
#include <cstdio>
#include <vector>

#include "abcast/audit.hpp"
#include "abcast/ct_abcast.hpp"
#include "app/stack_builder.hpp"
#include "repl/repl_consensus.hpp"
#include "sim/sim_world.hpp"

using namespace dpu;

int main() {
  constexpr std::size_t kStacks = 5;
  StandardStackOptions options;
  options.fd.heartbeat_interval = 20 * kMillisecond;
  options.fd.initial_timeout = 150 * kMillisecond;
  options.rp2p.retransmit_interval = 10 * kMillisecond;
  ProtocolLibrary library = make_standard_library(options);

  SimConfig sim{.num_stacks = kStacks, .seed = 1234};
  sim.net.drop_probability = 0.05;
  SimWorld world(sim, &library);

  // Composition: substrate + Repl-Consensus facade + CT-ABcast on top.
  std::vector<ReplConsensusModule*> consensus;
  AbcastAudit audit;
  std::vector<std::unique_ptr<AbcastAudit::Listener>> listeners;
  for (NodeId i = 0; i < kStacks; ++i) {
    Stack& stack = world.stack(i);
    UdpModule::create(stack);
    Rp2pModule::create(stack, kRp2pService, options.rp2p);
    RbcastModule::create(stack);
    FdModule::create(stack, kFdService, options.fd);
    consensus.push_back(ReplConsensusModule::create(stack));
    CtAbcastModule::create(stack);
    listeners.push_back(std::make_unique<AbcastAudit::Listener>(audit, i));
    stack.listen<AbcastListener>(kAbcastService, listeners.back().get(),
                                 nullptr);
    stack.start_all();
  }

  auto send = [&](TimePoint at, NodeId from, const std::string& tag) {
    world.at_node(at, from, [&world, &audit, from, tag]() {
      if (world.crashed(from)) return;
      const Bytes payload = to_bytes(tag);
      audit.record_sent(from, payload);
      world.stack(from).require<AbcastApi>(kAbcastService)
          .call([payload](AbcastApi& api) { api.abcast(payload); });
    });
  };

  // Load: 40 messages per stack across 8 simulated seconds.
  for (NodeId i = 0; i < kStacks; ++i) {
    for (int k = 0; k < 40; ++k) {
      send((50 + k * 200) * kMillisecond, i,
           "n" + std::to_string(i) + "-" + std::to_string(k));
    }
  }

  std::printf("t=2.0s  switching consensus protocol: CT -> MR\n");
  world.at_node(2 * kSecond, 0,
                [&]() { consensus[0]->change_consensus("consensus.mr"); });

  std::printf("t=3.0s  crashing stack 4\n");
  world.at(3 * kSecond, [&]() { world.crash(4); });

  std::printf("t=4.5s  partitioning stack 2 away for 1.5 seconds\n");
  world.at(4500 * kMillisecond, [&]() {
    world.set_link_filter(
        [](NodeId src, NodeId dst) { return src != 2 && dst != 2; });
  });
  world.at(6 * kSecond, [&]() {
    std::printf("t=6.0s  partition healed\n");
    world.set_link_filter(nullptr);
  });

  world.run_for(60 * kSecond);

  auto report = audit.check(kStacks, world.crashed_set());
  std::printf("\nproperty audit over the whole run: %s\n",
              report.summary().c_str());
  std::printf("deliveries per surviving stack:");
  for (NodeId i = 0; i < kStacks; ++i) {
    if (!world.crashed(i)) std::printf(" s%u=%zu", i, audit.deliveries_at(i));
  }
  const StreamId abcast_stream =
      fnv1a64(std::string(kAbcastService) + "/stream");
  std::printf("\nconsensus versions on stack 0: %zu; abcast stream now on: %s\n",
              consensus[0]->version_count(),
              consensus[0]
                  ->protocol_of(consensus[0]->stream_version(abcast_stream))
                  .c_str());
  return report.ok ? 0 : 1;
}
