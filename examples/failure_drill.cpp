// Failure drill — the kitchen-sink robustness scenario, expressed as a
// reusable spec from the curated scenario library (src/scenario).
//
// A 5-stack world endures, in one run:
//   * 5% message loss throughout,
//   * a live replacement of the *consensus* protocol (CT -> MR, the paper's
//     future-work extension) under atomic-broadcast load,
//   * a crash of one stack shortly after the switch,
//   * a transient network partition that isolates another stack,
// and finishes with a full property audit: the four ABcast properties
// (validity, uniform agreement, uniform integrity, uniform total order)
// must hold for the survivors over the entire run.
//
//   $ ./failure_drill [seed]
//
// The same schedule runs in CI under seed sweeps via `scenario_campaign`;
// this example executes one seed and prints the structured result record.
#include <cstdio>
#include <cstdlib>

#include "scenario/library.hpp"
#include "scenario/runner.hpp"

using namespace dpu;
using namespace dpu::scenario;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1234;

  std::optional<ScenarioSpec> spec = find_scenario("failure-drill");
  if (!spec.has_value()) {
    std::fprintf(stderr, "curated scenario 'failure-drill' missing\n");
    return 2;
  }

  std::printf("failure drill (seed %llu): %s\n",
              static_cast<unsigned long long>(seed),
              spec->description.c_str());
  for (const UpdateAction& u : spec->updates) {
    std::printf("t=%.1fs  switch consensus protocol -> %s (initiator s%u)\n",
                to_seconds(u.at), u.protocol.c_str(), u.initiator);
  }
  for (const CrashFault& c : spec->crashes) {
    std::printf("t=%.1fs  crash stack %u\n", to_seconds(c.at), c.node);
  }
  for (const PartitionFault& p : spec->partitions) {
    std::printf("t=%.1fs  partition %zu stack(s) away until t=%.1fs\n",
                to_seconds(p.from), p.isolated.size(), to_seconds(p.until));
  }

  const ScenarioResult result = run_scenario(*spec, seed);

  std::printf("\nproperty audit over the whole run: %s\n",
              result.abcast_report.summary().c_str());
  std::printf("generic DPU properties: %s\n",
              result.generic_report.summary().c_str());
  std::printf("\nresult record:\n%s\n", result.to_json().dump(2).c_str());
  return result.ok() ? 0 : 1;
}
