// Quickstart — the smallest complete DPU program.
//
// Builds a 3-stack world running the paper's group-communication stack
// (Figure 4), broadcasts a few totally-ordered messages, hot-swaps the
// atomic broadcast protocol from Chandra-Toueg to the sequencer protocol
// *while messages are flowing*, and shows that every stack delivered the
// same sequence.
//
//   $ ./quickstart
#include <cstdio>
#include <vector>

#include "app/stack_builder.hpp"
#include "sim/sim_world.hpp"

using namespace dpu;

int main() {
  // 1. A protocol library tells Algorithm 1 how to create modules for every
  //    protocol that can be switched in.
  StandardStackOptions options;
  ProtocolLibrary library = make_standard_library(options);

  // 2. Three simulated stacks with the standard composition:
  //    UDP / RP2P / FD / RBcast / consensus / Repl-ABcast / topics / GM.
  SimWorld world(SimConfig{.num_stacks = 3, .seed = 2026}, &library);
  std::vector<StandardStack> stacks;
  for (NodeId i = 0; i < world.size(); ++i) {
    stacks.push_back(build_standard_stack(world.stack(i), options));
  }

  // 3. Record deliveries on every stack through the abcast facade.
  struct Recorder final : AbcastListener {
    NodeId node;
    std::vector<std::string>* log;
    void adeliver(NodeId sender, const Bytes& payload) override {
      log->push_back("s" + std::to_string(sender) + ":" + to_string(payload));
    }
  };
  std::vector<std::vector<std::string>> logs(world.size());
  std::vector<Recorder> recorders(world.size());
  for (NodeId i = 0; i < world.size(); ++i) {
    recorders[i].node = i;
    recorders[i].log = &logs[i];
    world.stack(i).listen<AbcastListener>(kAbcastService, &recorders[i],
                                          nullptr);
  }

  auto send = [&](TimePoint at, NodeId from, const std::string& text) {
    world.at_node(at, from, [&world, from, text]() {
      world.stack(from).require<AbcastApi>(kAbcastService)
          .call([&text](AbcastApi& api) { api.abcast(to_bytes(text)); });
    });
  };

  // 4. Messages before, during and after a live protocol switch.
  send(10 * kMillisecond, 0, "hello");
  send(20 * kMillisecond, 1, "from");
  send(30 * kMillisecond, 2, "three stacks");
  world.at_node(40 * kMillisecond, 0, [&]() {
    // The service-generic control plane: any replaceable service switches
    // through the same call — request_update("consensus", "consensus.mr")
    // would swap the consensus implementation instead.
    std::printf("--> stack 0 requests update(abcast -> abcast.seq)\n");
    stacks[0].update->request_update(kAbcastService, "abcast.seq");
  });
  send(41 * kMillisecond, 1, "switching");       // in flight during the switch
  send(60 * kMillisecond, 2, "now on the");
  send(80 * kMillisecond, 0, "sequencer protocol");

  world.run_for(5 * kSecond);

  // 5. Show the identical delivery sequences.
  std::printf("\ndelivery order (identical on every stack):\n");
  for (std::size_t k = 0; k < logs[0].size(); ++k) {
    std::printf("  %2zu. %s\n", k + 1, logs[0][k].c_str());
  }
  bool identical = true;
  for (NodeId i = 1; i < world.size(); ++i) {
    if (logs[i] != logs[0]) identical = false;
  }
  std::printf("\nall stacks delivered the same sequence: %s\n",
              identical ? "yes" : "NO (bug!)");
  const UpdateStatus status =
      stacks[0].update->current_version(kAbcastService);
  std::printf("protocol after switch: %s (version=%llu)\n",
              status.protocol.c_str(),
              static_cast<unsigned long long>(status.version));
  return identical ? 0 : 1;
}
