#!/usr/bin/env bash
# refresh_baselines.sh — regenerate the checked-in CI baselines under ci/
# after an intentional behaviour or performance change.
#
#   scripts/refresh_baselines.sh [BUILD_DIR]
#
# Rebuilds the Release tools, re-runs the curated campaign and the engine
# throughput bench (including the --curve sweep), rewrites
# ci/campaign_baseline.json and ci/bench_engine_baseline.json, and prints a
# diff of the deterministic counters so the "why did the numbers move"
# paragraph of the commit message writes itself.  See ci/README.md for the
# policy: never refresh to paper over an unexplained regression.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
SEEDS="${SEEDS:-3}"
REPEAT="${REPEAT:-5}"

if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
fi
build_type="$(grep -E '^CMAKE_BUILD_TYPE' "${BUILD_DIR}/CMakeCache.txt" \
  | cut -d= -f2)"
if [[ "${build_type}" != "Release" ]]; then
  echo "refresh_baselines: ${BUILD_DIR} is a ${build_type:-unset} tree;" \
    "baselines must come from a Release build" >&2
  exit 1
fi

cmake --build "${BUILD_DIR}" -j "$(nproc)" \
  --target scenario_campaign bench_engine_throughput perf_gate

tmp="$(mktemp -d)"
trap 'rm -rf "${tmp}"' EXIT

echo "== campaign (--seeds ${SEEDS}) =="
"${BUILD_DIR}/scenario_campaign" --seeds "${SEEDS}" \
  --out "${tmp}/campaign-results.json"
"${BUILD_DIR}/perf_gate" digest --campaign "${tmp}/campaign-results.json" \
  --out "${tmp}/campaign_baseline.json"

echo "== engine bench (--repeat ${REPEAT} --curve) =="
"${BUILD_DIR}/bench_engine_throughput" --repeat "${REPEAT}" --curve \
  --out "${tmp}/bench_engine_baseline.json"

# Deterministic-counter diff before the overwrite: wall-clock fields move
# on every refresh, counters only when behaviour changed.
echo "== counter diff (old -> new; wall-clock noise excluded) =="
strip_wallclock() {
  grep -Ev '"(wall_ms|events_per_sec|packets_per_sec|deliveries_per_sec)"' \
    "$1"
}
for name in campaign_baseline bench_engine_baseline; do
  echo "-- ci/${name}.json"
  if diff -u <(strip_wallclock "ci/${name}.json") \
             <(strip_wallclock "${tmp}/${name}.json"); then
    echo "   (no counter change)"
  fi
done

mv "${tmp}/campaign_baseline.json" ci/campaign_baseline.json
mv "${tmp}/bench_engine_baseline.json" ci/bench_engine_baseline.json
echo "== done; commit ci/*.json together with the change that moved them =="
