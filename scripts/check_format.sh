#!/usr/bin/env bash
# Checks (default) or fixes (--fix) clang-format conformance for all C++
# sources.  Used by the CI "format" job; run locally before pushing:
#
#   scripts/check_format.sh          # report violations, exit 1 if any
#   scripts/check_format.sh --fix    # rewrite files in place
set -euo pipefail

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "error: $CLANG_FORMAT not found (set CLANG_FORMAT=... to override)" >&2
  exit 2
fi

mapfile -t files < <(find src bench examples tests \
  \( -name '*.cpp' -o -name '*.hpp' \) | sort)

if [[ "${1:-}" == "--fix" ]]; then
  "$CLANG_FORMAT" -i "${files[@]}"
  echo "formatted ${#files[@]} file(s)"
  exit 0
fi

bad=0
for f in "${files[@]}"; do
  if ! "$CLANG_FORMAT" --dry-run -Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f"
    "$CLANG_FORMAT" "$f" | diff -u "$f" - | head -40 || true
    bad=1
  fi
done
if [[ $bad -ne 0 ]]; then
  echo "run scripts/check_format.sh --fix" >&2
  exit 1
fi
echo "all ${#files[@]} file(s) clean"
