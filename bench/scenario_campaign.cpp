// scenario_campaign — runs fault/upgrade scenario campaigns and emits the
// machine-readable JSON artifact CI gates on.
//
//   scenario_campaign                        # curated library, seeds 1..3
//   scenario_campaign --list                 # print the curated names
//   scenario_campaign --scenario large-n-churn --seeds 5
//   scenario_campaign --spec my_scenario.json --out results.json
//   scenario_campaign --engine rt --scenario clean-switch
//                                            # same spec, real-thread engine
//
// Exit status: 0 when every run passes the property audits, 1 otherwise,
// 2 on usage/IO errors.
#include <cstdio>
#include <cstring>
#include <optional>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/campaign.hpp"
#include "scenario/library.hpp"

namespace {

using namespace dpu;
using namespace dpu::scenario;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --list               print curated scenario names and exit\n"
      "  --scenario NAME      run one curated scenario (repeatable)\n"
      "  --spec FILE.json     run a spec loaded from JSON (repeatable)\n"
      "  --engine sim|rt      override the execution engine of every\n"
      "                       selected spec (default: each spec's own)\n"
      "  --seeds K            sweep seeds base..base+K-1 (default 3)\n"
      "  --seed-base B        first seed of the sweep (default 1)\n"
      "  --repeat K           run the whole campaign K times and fail\n"
      "                       unless every run's JSON document is\n"
      "                       byte-identical (sim-engine specs only)\n"
      "  --sim-shards S       override simulator event-engine shards for\n"
      "                       every sim run (results are byte-identical at\n"
      "                       every value; default: each spec's own)\n"
      "  --threads T          worker threads (default: hardware)\n"
      "  --out FILE           write the results JSON there (default stdout)\n"
      "  --compact            compact JSON instead of pretty-printed\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<ScenarioSpec> specs;
  std::vector<std::string> wanted;
  std::vector<std::string> spec_files;
  std::string out_path;
  std::uint64_t seed_count = 3;
  std::uint64_t seed_base = 1;
  std::uint64_t repeat = 1;
  std::size_t threads = 0;
  std::size_t sim_shards = 0;  // 0: each spec's own
  int indent = 2;
  std::optional<Engine> engine_override;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--list") {
      for (const ScenarioSpec& spec : curated_scenarios()) {
        std::printf("%-28s %s\n", spec.name.c_str(),
                    spec.description.c_str());
      }
      return 0;
    } else if (arg == "--scenario") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      wanted.emplace_back(v);
    } else if (arg == "--spec") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      spec_files.emplace_back(v);
    } else if (arg == "--engine") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      try {
        engine_override = engine_from_name(v);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (arg == "--seeds") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      seed_count = std::strtoull(v, nullptr, 10);
      if (seed_count == 0) return usage(argv[0]);
    } else if (arg == "--seed-base") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      seed_base = std::strtoull(v, nullptr, 10);
    } else if (arg == "--repeat") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      repeat = std::strtoull(v, nullptr, 10);
      if (repeat == 0) return usage(argv[0]);
    } else if (arg == "--sim-shards") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      sim_shards = std::strtoull(v, nullptr, 10);
      if (sim_shards == 0) return usage(argv[0]);
    } else if (arg == "--threads") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      threads = std::strtoull(v, nullptr, 10);
    } else if (arg == "--out") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      out_path = v;
    } else if (arg == "--compact") {
      indent = -1;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  // Assemble the spec list: named curated scenarios, file-loaded specs, or
  // (default) the whole curated library.
  for (const std::string& name : wanted) {
    std::optional<ScenarioSpec> spec = find_scenario(name);
    if (!spec.has_value()) {
      std::fprintf(stderr, "unknown scenario '%s' (try --list)\n",
                   name.c_str());
      return 2;
    }
    specs.push_back(std::move(*spec));
  }
  for (const std::string& path : spec_files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot read '%s'\n", path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      ScenarioSpec spec = ScenarioSpec::from_json_text(text.str());
      const std::vector<std::string> problems = spec.validate();
      if (!problems.empty()) {
        std::fprintf(stderr, "spec '%s' is invalid:\n", path.c_str());
        for (const std::string& p : problems) {
          std::fprintf(stderr, "  - %s\n", p.c_str());
        }
        return 2;
      }
      specs.push_back(std::move(spec));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "spec '%s': %s\n", path.c_str(), e.what());
      return 2;
    }
  }
  if (specs.empty()) specs = curated_scenarios();
  if (engine_override.has_value()) {
    for (ScenarioSpec& spec : specs) spec.engine = *engine_override;
  }

  if (repeat > 1) {
    // The byte-identity gate only holds for the deterministic simulator:
    // rt runs are wall-clock executions and never reproduce exactly.
    for (const ScenarioSpec& spec : specs) {
      if (spec.engine == Engine::kRt) {
        std::fprintf(stderr,
                     "--repeat needs sim-engine specs ('%s' runs on rt)\n",
                     spec.name.c_str());
        return 2;
      }
    }
  }

  CampaignOptions options;
  options.seeds.clear();
  for (std::uint64_t k = 0; k < seed_count; ++k) {
    options.seeds.push_back(seed_base + k);
  }
  options.threads = threads;
  options.run.sim_shards = sim_shards;

  const CampaignOutcome outcome = run_campaign(specs, options);
  const std::string text = outcome.document.dump(indent) + "\n";
  for (std::uint64_t r = 2; r <= repeat; ++r) {
    // The campaign document is a pure function of (specs, seeds): any byte
    // difference between repeats is a determinism regression.
    const CampaignOutcome again = run_campaign(specs, options);
    const std::string again_text = again.document.dump(indent) + "\n";
    if (again_text != text) {
      std::fprintf(stderr,
                   "campaign: repeat %llu produced a different document — "
                   "determinism violation\n",
                   static_cast<unsigned long long>(r));
      return 1;
    }
  }
  if (out_path.empty()) {
    std::fwrite(text.data(), 1, text.size(), stdout);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
      return 2;
    }
    out << text;
  }
  std::fprintf(stderr, "campaign: %zu run(s), %zu failed — %s\n",
               outcome.runs, outcome.failed_runs,
               outcome.ok ? "OK" : "AUDIT VIOLATIONS");
  return outcome.ok ? 0 : 1;
}
