// Ablation A2 — heterogeneous switching between all three ABcast providers
// (the purpose of the middleware: "switching on-the-fly between different
// atomic broadcast protocols").
//
// For every ordered pair (from, to), runs a loaded world that switches
// mid-run and reports the steady latency of each protocol plus the
// perturbation of the switch.  SEQ and TOKEN have visibly different latency
// profiles from CT, so the before/after columns also serve as a comparison
// of the three ordering strategies.  Diagonal entries reproduce the paper's
// same-protocol experiment for each provider.
#include <cstdio>

#include "common/harness.hpp"

namespace dpu::bench {
namespace {

const char* kProtocols[] = {"abcast.ct", "abcast.seq", "abcast.token"};

void run_matrix(std::size_t n, double load_per_stack) {
  const Duration duration = full_mode() ? 16 * kSecond : 10 * kSecond;
  std::vector<ExperimentConfig> configs;
  for (const char* from : kProtocols) {
    for (const char* to : kProtocols) {
      ExperimentConfig c;
      c.n = n;
      c.seed = 31;
      c.load_per_stack = load_per_stack;
      c.duration = duration;
      c.mode = Mode::kRepl;
      c.abcast_protocol = from;
      c.switches = {{duration / 2, to}};
      configs.push_back(c);
    }
  }
  auto results = run_parallel(configs);

  print_header("Protocol switch matrix, n=" + std::to_string(n) + ", load=" +
               fmt_fixed(load_per_stack * n, 0) + " msg/s");
  print_row({"from->to", "before[us]", "during[us]", "after[us]", "spike[x]",
             "reissued", "lost"});
  std::size_t idx = 0;
  for (const char* from : kProtocols) {
    for (const char* to : kProtocols) {
      const ExperimentConfig& cfg = configs[idx];
      const ExperimentResult& r = results[idx];
      ++idx;
      const auto [sw_start, sw_end] = r.switch_windows[0];
      const double before = r.mean_latency_us(cfg.warmup, sw_start);
      const double during = r.switch_latency_us();
      const double after = r.mean_latency_us(sw_end + kSecond, cfg.duration);
      const auto expected = r.messages_sent * n;
      print_row({std::string(from + 7) + "->" + (to + 7),
                 fmt_fixed(before, 1), fmt_fixed(during, 1),
                 fmt_fixed(after, 1), fmt_fixed(during / before, 2),
                 std::to_string(r.reissued),
                 std::to_string(expected - r.deliveries)});
    }
  }
}

}  // namespace
}  // namespace dpu::bench

int main() {
  using namespace dpu::bench;
  std::printf("ABcast protocol switch matrix (CT / SEQ / TOKEN)\n");
  run_matrix(3, 300.0);
  if (full_mode()) run_matrix(7, 150.0);
  return 0;
}
