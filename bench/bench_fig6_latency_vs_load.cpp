// Figure 6 — average ABcast latency as a function of load, for n=3 and n=7
// stacks, in three configurations:
//   1. "normal, without replacement layer"  (protocol binds abcast directly)
//   2. "normal, with replacement layer"     (Repl-ABcast interposed, idle)
//   3. "during replacement"                 (same-protocol switches keep
//                                            firing; latency measured for
//                                            messages sent inside switch
//                                            windows)
//
// Expected shape (paper Fig. 6 + §6.3): latency grows with load towards a
// saturation knee; the replacement layer costs ~5%; the during-replacement
// series sits above normal but by a modest factor; n=7 costs more than n=3.
#include <cstdio>

#include "common/harness.hpp"

namespace dpu::bench {
namespace {

struct Point {
  std::size_t n;
  double load_per_stack;
};

void run_fig6(std::size_t n, const std::vector<double>& loads) {
  // Build the experiment matrix: 3 configs per load point, run in parallel.
  std::vector<ExperimentConfig> configs;
  const Duration duration = full_mode() ? 20 * kSecond : 12 * kSecond;
  for (double load : loads) {
    ExperimentConfig base;
    base.n = n;
    base.seed = 7;
    base.load_per_stack = load;
    base.duration = duration;

    ExperimentConfig no_layer = base;
    no_layer.mode = Mode::kNoLayer;
    configs.push_back(no_layer);

    ExperimentConfig with_layer = base;
    with_layer.mode = Mode::kRepl;
    configs.push_back(with_layer);

    ExperimentConfig during = base;
    during.mode = Mode::kRepl;
    for (TimePoint t = 2 * kSecond; t + kSecond < duration; t += 2 * kSecond) {
      during.switches.push_back({t, "abcast.ct"});
    }
    configs.push_back(during);
  }

  std::vector<ExperimentResult> results = run_parallel(configs);

  print_header("Figure 6: latency vs load, n=" + std::to_string(n));
  print_row({"load[msg/s]", "no-layer[us]", "with-layer[us]", "overhead[%]",
             "during-repl[us]", "vs-normal[x]"});
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const ExperimentConfig& cfg = configs[3 * i];
    const double no_layer = results[3 * i].steady_latency_us(cfg);
    const double with_layer = results[3 * i + 1].steady_latency_us(cfg);
    const double during = results[3 * i + 2].switch_latency_us();
    print_row({fmt_fixed(loads[i] * static_cast<double>(n), 0),
               fmt_fixed(no_layer, 1), fmt_fixed(with_layer, 1),
               fmt_fixed(100.0 * (with_layer - no_layer) / no_layer, 1),
               fmt_fixed(during, 1),
               fmt_fixed(during / with_layer, 2)});
  }
}

}  // namespace
}  // namespace dpu::bench

int main() {
  using namespace dpu::bench;
  std::printf("Fig. 6 reproduction — latency vs load, three configurations\n");
  // Load grids reach ~75% of each size's saturation throughput (paper §6.2:
  // "the solid graphs reach 75% of the maximal ABcast values"): the n=3
  // world saturates around 9000 msg/s, the n=7 world around 4700 msg/s.
  if (full_mode()) {
    run_fig6(3, {100, 250, 500, 750, 1000, 1500, 2000, 2250});
    run_fig6(7, {25, 50, 100, 200, 300, 400, 450, 500});
  } else {
    run_fig6(3, {100, 500, 1500, 2250});
    run_fig6(7, {25, 100, 300, 500});
  }
  return 0;
}
