// bench_engine_throughput — engine hot-path benchmark, perf-gated in CI.
//
// Measures raw simulator throughput (events/sec, packets/sec of wall time)
// on three workloads:
//
//   * saturate     — five stacks flood the rbcast substrate at a rate far
//                    beyond the calibrated CPU model's capacity, so the run
//                    is dominated by packet-delivery and timer events: the
//                    exact hot path the zero-copy Payload buffers and the
//                    pooled event engine optimize.  Runs the product-default
//                    rp2p configuration (coalesced delayed acks).
//   * saturate_per_packet — the same flood with ack coalescing disabled
//                    (one ack per DATA packet): the historical event mix,
//                    kept as the coalescing ablation.
//   * crash_storm  — the same flood with two mid-run crashes and a long
//                    drain window; exercises the rp2p give-up/backoff path
//                    (without it, crashed stacks attract unbounded
//                    retransmissions for the whole drain).
//
// Virtual-world counters (events, packets, deliveries, retransmissions) are
// deterministic for a given seed; wall-clock throughput is machine-dependent.
// The CI gate (perf_gate engine) therefore checks counters against a
// tolerance band and throughput against a generous minimum ratio of the
// checked-in baseline (see ci/README.md for how the baseline is refreshed).
//
//   bench_engine_throughput --out BENCH_engine.json [--seed N] [--repeat K]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "fd/fd.hpp"
#include "net/rbcast.hpp"
#include "net/rp2p.hpp"
#include "net/udp_module.hpp"
#include "scenario/json.hpp"
#include "sim/sim_world.hpp"

namespace {

using namespace dpu;
using dpu::scenario::Json;

constexpr ChannelId kBenchChannel = 99;

struct FloodSpec {
  std::size_t n = 5;
  double rate_per_stack = 2000.0;  ///< broadcasts per virtual second
  std::size_t message_size = 64;
  Duration duration = 2 * kSecond;
  Duration drain = 5 * kSecond;
  /// Product default: coalesced delayed acks.  0 disables coalescing (one
  /// ack per DATA packet) — the pre-coalescing event mix, kept as an
  /// ablation workload.
  Duration ack_delay = kMillisecond;
  std::vector<std::pair<TimePoint, NodeId>> crashes;
};

struct FloodResult {
  std::uint64_t events = 0;
  std::uint64_t deferrals = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t retransmissions = 0;
  double wall_s = 0.0;

  [[nodiscard]] double events_per_sec() const {
    return wall_s > 0.0 ? static_cast<double>(events) / wall_s : 0.0;
  }
  [[nodiscard]] double packets_per_sec() const {
    return wall_s > 0.0 ? static_cast<double>(packets_sent) / wall_s : 0.0;
  }
};

FloodResult run_flood(const FloodSpec& spec, std::uint64_t seed) {
  SimConfig config;
  config.num_stacks = spec.n;
  config.seed = seed;
  SimWorld world(config);

  std::vector<RbcastModule*> rbcast;
  std::vector<Rp2pModule*> rp2p;
  std::uint64_t deliveries = 0;
  for (NodeId i = 0; i < spec.n; ++i) {
    Stack& stack = world.stack(i);
    UdpModule::create(stack);
    Rp2pModule::Config rc;
    rc.ack_delay = spec.ack_delay;
    rp2p.push_back(Rp2pModule::create(stack, kRp2pService, rc));
    rbcast.push_back(RbcastModule::create(stack));
    FdModule::create(stack);
    rbcast.back()->rbcast_bind_channel(
        kBenchChannel,
        [&deliveries](NodeId, const auto&) { ++deliveries; });
    stack.start_all();
  }

  // Open-loop flood driven through the engine's timer path — the same shape
  // as the real WorkloadModule, so the bench exercises timer fire + packet
  // delivery, the two event classes the pooled engine optimizes.
  struct Sender {
    HostEnv* host = nullptr;
    RbcastModule* rbcast = nullptr;
    Duration gap = 0;
    TimePoint next = 0;
    TimePoint stop_at = 0;
    std::size_t message_size = 0;
    std::uint64_t sent = 0;

    void fire() {
      if (next > stop_at) return;
      BufWriter w(message_size);
      w.put_u64(sent++);
      for (std::size_t b = 8; b < message_size; ++b) {
        w.put_u8(static_cast<std::uint8_t>(b));
      }
      rbcast->rbcast(kBenchChannel, w.take_payload());
      next += gap;
      arm();
    }

    void arm() {
      host->set_timer(std::max<Duration>(next - host->now(), 0),
                      [this]() { fire(); });
    }
  };
  std::vector<Sender> senders(spec.n);
  const auto gap = static_cast<Duration>(static_cast<double>(kSecond) /
                                         spec.rate_per_stack);
  for (NodeId i = 0; i < spec.n; ++i) {
    Sender& s = senders[i];
    s.host = &world.stack(i).host();
    s.rbcast = rbcast[i];
    s.gap = gap;
    s.next = i;  // stagger the stacks
    s.stop_at = spec.duration;
    s.message_size = spec.message_size;
    s.arm();
  }
  for (const auto& [t, node] : spec.crashes) {
    world.at(t, [&world, node = node]() { world.crash(node); });
  }

  const auto wall_start = std::chrono::steady_clock::now();
  world.run_until(spec.duration + spec.drain, 2'000'000'000ULL);
  const auto wall_end = std::chrono::steady_clock::now();

  FloodResult result;
  result.events = world.processed_events();
  result.deferrals = world.deferrals();
  result.packets_sent = world.packets_sent();
  result.packets_dropped = world.packets_dropped();
  result.deliveries = deliveries;
  for (NodeId i = 0; i < spec.n; ++i) {
    result.retransmissions += rp2p[i]->retransmissions();
  }
  result.wall_s =
      std::chrono::duration<double>(wall_end - wall_start).count();
  return result;
}

Json to_json(const FloodResult& r) {
  Json j = Json::object();
  j.set("events", r.events);
  j.set("deferrals", r.deferrals);
  j.set("packets_sent", r.packets_sent);
  j.set("packets_dropped", r.packets_dropped);
  j.set("deliveries", r.deliveries);
  j.set("retransmissions", r.retransmissions);
  j.set("wall_ms", r.wall_s * 1e3);
  j.set("events_per_sec", r.events_per_sec());
  j.set("packets_per_sec", r.packets_per_sec());
  return j;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--out FILE] [--seed N] [--repeat K]\n"
               "  --out FILE   write BENCH_engine.json there (default "
               "BENCH_engine.json)\n"
               "  --seed N     world seed (default 1)\n"
               "  --repeat K   best-of-K wall-clock timing (default 3)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_engine.json";
  std::uint64_t seed = 1;
  int repeat = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--out") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      out_path = v;
    } else if (arg == "--seed") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--repeat") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      repeat = std::atoi(v);
      if (repeat < 1) return usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  // The product-default configuration (coalesced acks) is the primary
  // workload now that it is also what every scenario and example runs.
  FloodSpec saturate;

  // Coalescing ablation: one ack per DATA packet, the historical event mix.
  FloodSpec saturate_per_packet;
  saturate_per_packet.ack_delay = 0;

  FloodSpec crash_storm;
  crash_storm.rate_per_stack = 400.0;
  crash_storm.duration = 3 * kSecond;
  crash_storm.drain = 20 * kSecond;
  crash_storm.crashes = {{kSecond, 3}, {1500 * kMillisecond, 4}};

  // Best-of-K: virtual counters are identical across repeats (same seed);
  // wall time takes the fastest run to suppress scheduler noise.
  auto best_of = [&](const FloodSpec& spec) {
    FloodResult best;
    for (int k = 0; k < repeat; ++k) {
      FloodResult r = run_flood(spec, seed);
      if (k == 0 || r.wall_s < best.wall_s) best = r;
    }
    return best;
  };

  auto report = [](const char* name, const FloodResult& r) {
    std::fprintf(stderr,
                 "%-18s %12llu events %12llu packets %10llu deferrals "
                 "%8.0f kev/s %8.0f kpkt/s  (%.0f ms)\n",
                 name, static_cast<unsigned long long>(r.events),
                 static_cast<unsigned long long>(r.packets_sent),
                 static_cast<unsigned long long>(r.deferrals),
                 r.events_per_sec() / 1e3, r.packets_per_sec() / 1e3,
                 r.wall_s * 1e3);
  };
  const FloodResult sat = best_of(saturate);
  report("saturate:", sat);
  const FloodResult sat_pp = best_of(saturate_per_packet);
  report("saturate_per_packet:", sat_pp);
  const FloodResult storm = best_of(crash_storm);
  report("crash_storm:", storm);
  std::fprintf(stderr, "crash_storm retransmissions: %llu\n",
               static_cast<unsigned long long>(storm.retransmissions));

  Json doc = Json::object();
  Json meta = Json::object();
  meta.set("seed", seed);
  meta.set("repeat", repeat);
  doc.set("bench", std::move(meta));
  Json workloads = Json::object();
  workloads.set("saturate", to_json(sat));
  workloads.set("saturate_per_packet", to_json(sat_pp));
  workloads.set("crash_storm", to_json(storm));
  doc.set("workloads", std::move(workloads));

  const std::string text = doc.dump(2) + "\n";
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
    return 2;
  }
  out << text;
  return 0;
}
