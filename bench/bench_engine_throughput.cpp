// bench_engine_throughput — engine hot-path benchmark, perf-gated in CI.
//
// Measures raw simulator throughput (events/sec, packets/sec of wall time)
// on four workloads:
//
//   * saturate     — five stacks flood the rbcast substrate at a rate far
//                    beyond the calibrated CPU model's capacity, so the run
//                    is dominated by packet-delivery and timer events: the
//                    exact hot path the zero-copy Payload buffers, the
//                    pooled event engine and the batched packet path
//                    optimize.  Runs the product-default rp2p configuration
//                    (coalesced delayed acks, message batching on).
//   * saturate_unbatched — the same flood with batching off (one datagram
//                    per message): the batching ablation.  The ratio of its
//                    datagram count to saturate's is the batching win the
//                    CI curve gate enforces.
//   * saturate_per_packet — batching off and ack coalescing disabled (one
//                    ack per DATA packet): the historical event mix, kept
//                    as the coalescing ablation.
//   * crash_storm  — the product-default flood with two mid-run crashes and
//                    a long drain window; exercises the rp2p
//                    give-up/backoff path (without it, crashed stacks
//                    attract unbounded retransmissions for the whole
//                    drain).
//
// --curve additionally sweeps node count on both engines (batched vs
// unbatched at identical seeds) and emits a throughput curve — events/sec
// and deliveries/sec vs nodes — for the sim, plus a wall-clock
// deliveries/sec curve for the rt engine over real UDP sockets (the
// sendmmsg/recvmmsg path).  perf_gate's curve mode gates the whole curve:
// deterministic sim counters against tolerance bands, the sim datagram
// ratio against a hard floor, and the rt batched/unbatched speedup against
// a minimum at every node count.
//
// Virtual-world counters (events, packets, deliveries, retransmissions) are
// deterministic for a given seed; wall-clock throughput is machine-dependent.
// The CI gate (perf_gate engine) therefore checks counters against a
// tolerance band and throughput against a generous minimum ratio of the
// checked-in baseline (see ci/README.md for how the baseline is refreshed).
//
//   bench_engine_throughput --out BENCH_engine.json [--seed N] [--repeat K]
//                           [--curve] [--rt-port BASE]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fd/fd.hpp"
#include "net/rbcast.hpp"
#include "net/rp2p.hpp"
#include "net/udp_module.hpp"
#include "rt/rt_world.hpp"
#include "scenario/json.hpp"
#include "sim/sim_world.hpp"

namespace {

using namespace dpu;
using dpu::scenario::Json;

constexpr ChannelId kBenchChannel = 99;

struct FloodSpec {
  std::size_t n = 5;
  /// Broadcasts per virtual second per stack.  High enough that several
  /// messages land on every rp2p link within one batch flush window
  /// (Config::batch_flush_ns): the saturate workloads are specifically the
  /// regime batching is for, and the CI gate pins the resulting datagram
  /// ratio.
  double rate_per_stack = 8000.0;
  std::size_t message_size = 64;
  Duration duration = 2 * kSecond;
  Duration drain = 5 * kSecond;
  /// Product default: coalesced delayed acks.  0 disables coalescing (one
  /// ack per DATA packet) — the pre-coalescing event mix, kept as an
  /// ablation workload.
  Duration ack_delay = kMillisecond;
  /// Product default: batched packet path.  false = one datagram per
  /// message (the batching ablation).
  bool batching = true;
  /// Simulator event-engine shards (results are byte-identical at every
  /// value; see sim_world.hpp).  The curve sweeps this.
  std::size_t shards = 1;
  std::vector<std::pair<TimePoint, NodeId>> crashes;
};

struct FloodResult {
  std::uint64_t events = 0;
  std::uint64_t deferrals = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t messages_sent = 0;    ///< rp2p messages accepted (all stacks)
  std::uint64_t data_datagrams = 0;   ///< rp2p DATA datagrams serialized
  /// Sharded-engine round counters.  barriers/merges are pure functions of
  /// event timings (identical at every shard count — the gate checks that);
  /// stalls depend on shard grouping and are informational only.
  std::uint64_t window_barriers = 0;
  std::uint64_t merge_batches = 0;
  std::uint64_t window_stalls = 0;
  double wall_s = 0.0;

  [[nodiscard]] double events_per_sec() const {
    return wall_s > 0.0 ? static_cast<double>(events) / wall_s : 0.0;
  }
  [[nodiscard]] double packets_per_sec() const {
    return wall_s > 0.0 ? static_cast<double>(packets_sent) / wall_s : 0.0;
  }
  [[nodiscard]] double deliveries_per_sec() const {
    return wall_s > 0.0 ? static_cast<double>(deliveries) / wall_s : 0.0;
  }
};

FloodResult run_flood(const FloodSpec& spec, std::uint64_t seed) {
  SimConfig config;
  config.num_stacks = spec.n;
  config.seed = seed;
  config.shards = spec.shards;
  SimWorld world(config);

  std::vector<RbcastModule*> rbcast;
  std::vector<Rp2pModule*> rp2p;
  std::uint64_t deliveries = 0;
  for (NodeId i = 0; i < spec.n; ++i) {
    Stack& stack = world.stack(i);
    UdpModule::create(stack);
    Rp2pModule::Config rc;
    rc.ack_delay = spec.ack_delay;
    rc.batching = spec.batching;
    rp2p.push_back(Rp2pModule::create(stack, kRp2pService, rc));
    rbcast.push_back(RbcastModule::create(stack));
    FdModule::create(stack);
    rbcast.back()->rbcast_bind_channel(
        kBenchChannel,
        [&deliveries](NodeId, const auto&) { ++deliveries; });
    stack.start_all();
  }

  // Open-loop flood driven through the engine's timer path — the same shape
  // as the real WorkloadModule, so the bench exercises timer fire + packet
  // delivery, the two event classes the pooled engine optimizes.
  struct Sender {
    HostEnv* host = nullptr;
    RbcastModule* rbcast = nullptr;
    Duration gap = 0;
    TimePoint next = 0;
    TimePoint stop_at = 0;
    std::size_t message_size = 0;
    std::uint64_t sent = 0;

    void fire() {
      if (next > stop_at) return;
      BufWriter w(message_size);
      w.put_u64(sent++);
      for (std::size_t b = 8; b < message_size; ++b) {
        w.put_u8(static_cast<std::uint8_t>(b));
      }
      rbcast->rbcast(kBenchChannel, w.take_payload());
      next += gap;
      arm();
    }

    void arm() {
      host->set_timer(std::max<Duration>(next - host->now(), 0),
                      [this]() { fire(); });
    }
  };
  std::vector<Sender> senders(spec.n);
  const auto gap = static_cast<Duration>(static_cast<double>(kSecond) /
                                         spec.rate_per_stack);
  for (NodeId i = 0; i < spec.n; ++i) {
    Sender& s = senders[i];
    s.host = &world.stack(i).host();
    s.rbcast = rbcast[i];
    s.gap = gap;
    s.next = i;  // stagger the stacks
    s.stop_at = spec.duration;
    s.message_size = spec.message_size;
    s.arm();
  }
  for (const auto& [t, node] : spec.crashes) {
    world.at(t, [&world, node = node]() { world.crash(node); });
  }

  const auto wall_start = std::chrono::steady_clock::now();
  world.run_until(spec.duration + spec.drain, 2'000'000'000ULL);
  const auto wall_end = std::chrono::steady_clock::now();

  FloodResult result;
  result.events = world.processed_events();
  result.deferrals = world.deferrals();
  result.packets_sent = world.packets_sent();
  result.packets_dropped = world.packets_dropped();
  result.deliveries = deliveries;
  result.window_barriers = world.window_barriers();
  result.merge_batches = world.merge_batches();
  result.window_stalls = world.window_stalls();
  for (NodeId i = 0; i < spec.n; ++i) {
    result.retransmissions += rp2p[i]->retransmissions();
    result.messages_sent += rp2p[i]->messages_sent();
    result.data_datagrams += rp2p[i]->data_datagrams_sent();
  }
  result.wall_s =
      std::chrono::duration<double>(wall_end - wall_start).count();
  return result;
}

Json to_json(const FloodResult& r) {
  Json j = Json::object();
  j.set("events", r.events);
  j.set("deferrals", r.deferrals);
  j.set("packets_sent", r.packets_sent);
  j.set("packets_dropped", r.packets_dropped);
  j.set("deliveries", r.deliveries);
  j.set("retransmissions", r.retransmissions);
  j.set("messages_sent", r.messages_sent);
  j.set("data_datagrams", r.data_datagrams);
  j.set("window_barriers", r.window_barriers);
  j.set("merge_batches", r.merge_batches);
  j.set("window_stalls", r.window_stalls);
  j.set("wall_ms", r.wall_s * 1e3);
  j.set("events_per_sec", r.events_per_sec());
  j.set("packets_per_sec", r.packets_per_sec());
  j.set("deliveries_per_sec", r.deliveries_per_sec());
  return j;
}

// ---------------------------------------------------------------------------
// rt/socket curve: wall-clock deliveries/sec over real UDP + sendmmsg.
// ---------------------------------------------------------------------------

struct RtFloodResult {
  std::uint64_t messages_sent = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t tx_datagrams = 0;
  std::uint64_t tx_syscalls = 0;
  std::uint64_t rx_datagrams = 0;
  std::uint64_t rx_syscalls = 0;
  bool complete = false;  ///< every sent message delivered before the cap
  double wall_s = 0.0;

  [[nodiscard]] double deliveries_per_sec() const {
    return wall_s > 0.0 ? static_cast<double>(deliveries) / wall_s : 0.0;
  }
};

/// All-to-all rp2p flood over kUdpSockets with app-level backpressure: each
/// node sends bursts to every peer from its own loop thread, pausing while
/// its unacked window is full, until `per_link` messages per link are out;
/// the run ends when everything sent has been delivered (or at the cap).
/// Fixed work, not fixed time, so batched and unbatched runs are directly
/// comparable as deliveries/sec.
constexpr Duration kRtTick = 250 * kMicrosecond;
// Big enough that a burst fills a whole batch_max_bytes datagram per peer:
// the rt curve probes the socket path at saturation, where per-datagram
// syscall and protocol overhead is the bottleneck batching removes.
constexpr std::uint64_t kRtBurstPerPeer = 16;
constexpr std::size_t kRtWindowDatagrams = 2000;
constexpr std::size_t kRtMessageSize = 64;

RtFloodResult run_rt_flood(std::size_t n, bool batching,
                           std::uint64_t per_link, std::uint16_t base_port,
                           std::uint64_t seed) {
  RtConfig config;
  config.num_stacks = n;
  config.seed = seed;
  config.transport = RtTransport::kUdpSockets;
  config.udp_base_port = base_port;
  RtWorld world(config);

  std::vector<Rp2pModule*> rp2p(n, nullptr);
  std::atomic<std::uint64_t> deliveries{0};
  for (NodeId i = 0; i < n; ++i) {
    Stack& stack = world.stack(i);
    UdpModule::create(stack);
    Rp2pModule::Config rc;
    rc.batching = batching;
    rp2p[i] = Rp2pModule::create(stack, kRp2pService, rc);
    rp2p[i]->rp2p_bind_channel(
        kBenchChannel, [&deliveries](NodeId, const Payload&) {
          deliveries.fetch_add(1, std::memory_order_relaxed);
        });
    stack.start_all();
  }

  struct RtSender {
    HostEnv* host = nullptr;
    Rp2pModule* rp2p = nullptr;
    NodeId self = 0;
    std::size_t n = 0;
    std::uint64_t per_link = 0;
    std::uint64_t sent_per_peer = 0;  // uniform across peers
    std::atomic<std::uint64_t>* sent_total = nullptr;

    void fire() {
      if (sent_per_peer >= per_link) return;  // done; timer chain ends
      // Backpressure: while the unacked window is full (overloaded link or
      // slow receiver), skip the burst and retry next tick.
      if (rp2p->unacked_total() < kRtWindowDatagrams) {
        const std::uint64_t burst =
            std::min(kRtBurstPerPeer, per_link - sent_per_peer);
        for (std::uint64_t b = 0; b < burst; ++b) {
          for (NodeId peer = 0; peer < n; ++peer) {
            if (peer == self) continue;
            BufWriter w(kRtMessageSize);
            w.put_u64(sent_per_peer + b);
            for (std::size_t byte = 8; byte < kRtMessageSize; ++byte) {
              w.put_u8(static_cast<std::uint8_t>(byte));
            }
            rp2p->rp2p_send(peer, kBenchChannel, w.take_payload());
          }
        }
        sent_per_peer += burst;
        sent_total->fetch_add(burst * (n - 1), std::memory_order_relaxed);
      }
      host->set_timer(kRtTick, [this]() { fire(); });
    }
  };
  std::atomic<std::uint64_t> sent_total{0};
  std::vector<std::unique_ptr<RtSender>> senders;
  for (NodeId i = 0; i < n; ++i) {
    auto s = std::make_unique<RtSender>();
    s->host = &world.stack(i).host();
    s->rp2p = rp2p[i];
    s->self = i;
    s->n = n;
    s->per_link = per_link;
    s->sent_total = &sent_total;
    senders.push_back(std::move(s));
  }
  const std::uint64_t expected = per_link * n * (n - 1);

  const auto wall_start = std::chrono::steady_clock::now();
  world.start();
  for (NodeId i = 0; i < n; ++i) {
    world.post_to(i, [s = senders[i].get()]() { s->fire(); });
  }
  world.run(/*active_until=*/0, /*deadline=*/60 * kSecond, 0, [&]() {
    return deliveries.load(std::memory_order_relaxed) >= expected;
  });
  const auto wall_end = std::chrono::steady_clock::now();

  RtFloodResult result;
  result.messages_sent = sent_total.load();
  result.deliveries = deliveries.load();
  result.tx_datagrams = world.socket_tx_datagrams();
  result.tx_syscalls = world.socket_tx_syscalls();
  result.rx_datagrams = world.socket_rx_datagrams();
  result.rx_syscalls = world.socket_rx_syscalls();
  result.complete = result.deliveries >= expected;
  result.wall_s =
      std::chrono::duration<double>(wall_end - wall_start).count();
  return result;
}

Json to_json(const RtFloodResult& r) {
  Json j = Json::object();
  j.set("messages_sent", r.messages_sent);
  j.set("deliveries", r.deliveries);
  j.set("tx_datagrams", r.tx_datagrams);
  j.set("tx_syscalls", r.tx_syscalls);
  j.set("rx_datagrams", r.rx_datagrams);
  j.set("rx_syscalls", r.rx_syscalls);
  j.set("complete", r.complete);
  j.set("wall_ms", r.wall_s * 1e3);
  j.set("deliveries_per_sec", r.deliveries_per_sec());
  return j;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--out FILE] [--seed N] [--repeat K] [--curve] "
      "[--rt-port BASE]\n"
      "  --out FILE     write BENCH_engine.json there (default "
      "BENCH_engine.json)\n"
      "  --seed N       world seed (default 1)\n"
      "  --repeat K     best-of-K wall-clock timing (default 3)\n"
      "  --curve        also sweep node count (sim + rt/socket, batched vs\n"
      "                 unbatched) and emit the throughput curve\n"
      "  --rt-port BASE first UDP port for the rt curve (default 38100)\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_engine.json";
  std::uint64_t seed = 1;
  int repeat = 3;
  bool curve = false;
  std::uint16_t rt_port = 38100;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--out") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      out_path = v;
    } else if (arg == "--seed") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--repeat") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      repeat = std::atoi(v);
      if (repeat < 1) return usage(argv[0]);
    } else if (arg == "--curve") {
      curve = true;
    } else if (arg == "--rt-port") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      rt_port = static_cast<std::uint16_t>(std::atoi(v));
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  // The product-default configuration (coalesced acks, batching on) is the
  // primary workload — it is also what every scenario and example runs.
  FloodSpec saturate;

  // Batching ablation: one datagram per message, coalesced acks.  The
  // saturate/saturate_unbatched datagram ratio is the CI-gated batching win.
  FloodSpec saturate_unbatched;
  saturate_unbatched.batching = false;

  // Historical event mix: no batching, one ack per DATA packet.  Runs at
  // the historical offered load — at the saturate rate the per-packet ack
  // storm sends the CPU model into a deferral spiral that takes minutes of
  // wall clock to drain, which is useless as a CI workload.
  FloodSpec saturate_per_packet;
  saturate_per_packet.batching = false;
  saturate_per_packet.ack_delay = 0;
  saturate_per_packet.rate_per_stack = 2000.0;

  FloodSpec crash_storm;
  crash_storm.rate_per_stack = 400.0;
  crash_storm.duration = 3 * kSecond;
  crash_storm.drain = 20 * kSecond;
  crash_storm.crashes = {{kSecond, 3}, {1500 * kMillisecond, 4}};

  // Best-of-K: virtual counters are identical across repeats (same seed);
  // wall time takes the fastest run to suppress scheduler noise.
  auto best_of = [&](const FloodSpec& spec) {
    FloodResult best;
    for (int k = 0; k < repeat; ++k) {
      FloodResult r = run_flood(spec, seed);
      if (k == 0 || r.wall_s < best.wall_s) best = r;
    }
    return best;
  };

  auto report = [](const char* name, const FloodResult& r) {
    std::fprintf(stderr,
                 "%-20s %12llu events %12llu packets %10llu deferrals "
                 "%8.0f kev/s %8.0f kpkt/s  (%.0f ms)\n",
                 name, static_cast<unsigned long long>(r.events),
                 static_cast<unsigned long long>(r.packets_sent),
                 static_cast<unsigned long long>(r.deferrals),
                 r.events_per_sec() / 1e3, r.packets_per_sec() / 1e3,
                 r.wall_s * 1e3);
  };
  const FloodResult sat = best_of(saturate);
  report("saturate:", sat);
  const FloodResult sat_ub = best_of(saturate_unbatched);
  report("saturate_unbatched:", sat_ub);
  std::fprintf(stderr, "batching datagram ratio: %.2fx\n",
               sat.data_datagrams > 0
                   ? static_cast<double>(sat_ub.data_datagrams) /
                         static_cast<double>(sat.data_datagrams)
                   : 0.0);
  const FloodResult sat_pp = best_of(saturate_per_packet);
  report("saturate_per_packet:", sat_pp);
  const FloodResult storm = best_of(crash_storm);
  report("crash_storm:", storm);
  std::fprintf(stderr, "crash_storm retransmissions: %llu\n",
               static_cast<unsigned long long>(storm.retransmissions));

  Json doc = Json::object();
  Json meta = Json::object();
  meta.set("seed", seed);
  meta.set("repeat", repeat);
  // The shard-speedup gate is hardware-conditional: on boxes with fewer
  // than 4 cores the 4-shard run cannot be expected to beat serial, so the
  // gate reads this and skips the floor (loudly) when under-provisioned.
  meta.set("hardware_concurrency",
           static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  doc.set("bench", std::move(meta));
  Json workloads = Json::object();
  workloads.set("saturate", to_json(sat));
  workloads.set("saturate_unbatched", to_json(sat_ub));
  workloads.set("saturate_per_packet", to_json(sat_pp));
  workloads.set("crash_storm", to_json(storm));
  doc.set("workloads", std::move(workloads));

  if (curve) {
    // Sim curve: the saturate flood at growing node counts, batched vs
    // unbatched at the same seed.  Shorter active window than the single
    // point — event volume grows ~quadratically with nodes (eager rbcast
    // relay), and the curve's job is the trend, not the absolute peak.
    Json sim_points = Json::array();
    for (const std::size_t nodes : {3UL, 5UL, 8UL}) {
      FloodSpec point;
      point.n = nodes;
      // Eager rbcast relay makes event volume grow ~quadratically with
      // nodes — and the unbatched ablation amplifies it further (that
      // collapse is the curve's story, but a CI job must stay bounded:
      // at the full saturate rate the unbatched run past 5 nodes enters a
      // deferral spiral that takes minutes of wall clock).  Halve the
      // offered rate and the active window at the top of the curve;
      // counters stay deterministic at any fixed workload.
      if (nodes > 5) {
        point.rate_per_stack /= 2.0;
        point.duration = kSecond / 2;
      } else {
        point.duration = kSecond;
      }
      FloodSpec point_unbatched = point;
      point_unbatched.batching = false;
      const FloodResult batched = best_of(point);
      const FloodResult unbatched = best_of(point_unbatched);
      std::fprintf(stderr,
                   "curve sim n=%-2zu  batched %8.0f kev/s %8.0f kdel/s   "
                   "unbatched %8.0f kev/s %8.0f kdel/s   datagrams %.2fx\n",
                   nodes, batched.events_per_sec() / 1e3,
                   batched.deliveries_per_sec() / 1e3,
                   unbatched.events_per_sec() / 1e3,
                   unbatched.deliveries_per_sec() / 1e3,
                   batched.data_datagrams > 0
                       ? static_cast<double>(unbatched.data_datagrams) /
                             static_cast<double>(batched.data_datagrams)
                       : 0.0);
      Json p = Json::object();
      p.set("nodes", static_cast<std::uint64_t>(nodes));
      p.set("batched", to_json(batched));
      p.set("unbatched", to_json(unbatched));
      sim_points.push(std::move(p));
    }

    // Shard sweep: the batched saturate flood at every (nodes, shards)
    // point.  Virtual counters must be IDENTICAL down the shard axis
    // (byte-identity is the engine's contract; the gate enforces it on
    // events/packets/deliveries/barriers), while events/sec should climb —
    // the gate holds the largest point to a speedup floor when the host
    // has enough cores.
    Json shard_points = Json::array();
    for (const std::size_t nodes : {3UL, 5UL, 8UL}) {
      FloodSpec point;
      point.n = nodes;
      if (nodes > 5) {
        point.rate_per_stack /= 2.0;
        point.duration = kSecond / 2;
      } else {
        point.duration = kSecond;
      }
      for (const std::size_t shards : {1UL, 2UL, 4UL}) {
        if (shards > nodes) continue;
        FloodSpec sharded = point;
        sharded.shards = shards;
        const FloodResult r = best_of(sharded);
        std::fprintf(stderr,
                     "curve shards n=%-2zu s=%zu  %8.0f kev/s  "
                     "%10llu events  %8llu barriers  %6llu stalls  (%.0f ms)\n",
                     nodes, shards, r.events_per_sec() / 1e3,
                     static_cast<unsigned long long>(r.events),
                     static_cast<unsigned long long>(r.window_barriers),
                     static_cast<unsigned long long>(r.window_stalls),
                     r.wall_s * 1e3);
        Json p = Json::object();
        p.set("nodes", static_cast<std::uint64_t>(nodes));
        p.set("shards", static_cast<std::uint64_t>(shards));
        p.set("result", to_json(r));
        shard_points.push(std::move(p));
      }
    }

    // rt/socket curve: real UDP datagrams on loopback, sendmmsg/recvmmsg
    // path vs the same protocol stack without batching.  Distinct port
    // ranges per point, so a lingering socket cannot collide.
    Json rt_points = Json::array();
    std::uint16_t port = rt_port;
    for (const std::size_t nodes : {2UL, 4UL, 6UL}) {
      const std::uint64_t per_link = 4000;
      const RtFloodResult batched =
          run_rt_flood(nodes, true, per_link, port, seed);
      port = static_cast<std::uint16_t>(port + 100);
      const RtFloodResult unbatched =
          run_rt_flood(nodes, false, per_link, port, seed);
      port = static_cast<std::uint16_t>(port + 100);
      std::fprintf(stderr,
                   "curve rt  n=%-2zu  batched %8.0f kdel/s (%s, %.1f "
                   "dgram/syscall)   unbatched %8.0f kdel/s (%s)   "
                   "speedup %.2fx\n",
                   nodes, batched.deliveries_per_sec() / 1e3,
                   batched.complete ? "complete" : "CAPPED",
                   batched.tx_syscalls > 0
                       ? static_cast<double>(batched.tx_datagrams) /
                             static_cast<double>(batched.tx_syscalls)
                       : 0.0,
                   unbatched.deliveries_per_sec() / 1e3,
                   unbatched.complete ? "complete" : "CAPPED",
                   unbatched.deliveries_per_sec() > 0.0
                       ? batched.deliveries_per_sec() /
                             unbatched.deliveries_per_sec()
                       : 0.0);
      Json p = Json::object();
      p.set("nodes", static_cast<std::uint64_t>(nodes));
      p.set("batched", to_json(batched));
      p.set("unbatched", to_json(unbatched));
      rt_points.push(std::move(p));
    }

    Json curve_doc = Json::object();
    curve_doc.set("sim", std::move(sim_points));
    curve_doc.set("shards", std::move(shard_points));
    curve_doc.set("rt", std::move(rt_points));
    doc.set("curve", std::move(curve_doc));
  }

  const std::string text = doc.dump(2) + "\n";
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
    return 2;
  }
  out << text;
  return 0;
}
