// Extension E1 — replacement of the consensus protocol (the paper's
// announced future work [16]): an unmodified CT-ABcast drives load through
// the Repl-Consensus facade while the consensus service is switched from
// the Chandra-Toueg provider to the Mostéfaoui-Raynal provider.
//
// Reported: the latency timeline around the switch, the per-version
// decision counts (old instances finish on CT, new ones run on MR) and the
// stream-migration point.
#include <cstdio>

#include "app/probe.hpp"
#include "app/stack_builder.hpp"
#include "app/workload.hpp"
#include "common/harness.hpp"
#include "repl/repl_consensus.hpp"

namespace dpu::bench {
namespace {

void run_consensus_switch(std::size_t n, double load_per_stack) {
  StandardStackOptions options;
  ProtocolLibrary library = make_standard_library(options);

  SimConfig sim;
  sim.num_stacks = n;
  sim.seed = 51;
  sim.stack_cost.service_hop_cost = 8 * kMicrosecond;
  sim.stack_cost.module_create_cost = 20 * kMillisecond;
  SimWorld world(sim, &library);

  LatencyCollector collector(100 * kMillisecond);
  std::vector<ReplConsensusModule*> facade;
  std::vector<std::unique_ptr<LatencyProbe>> probes;
  std::vector<WorkloadModule*> workloads;
  const Duration duration = full_mode() ? 20 * kSecond : 12 * kSecond;

  for (NodeId i = 0; i < n; ++i) {
    Stack& stack = world.stack(i);
    UdpModule::create(stack);
    Rp2pModule::create(stack);
    RbcastModule::create(stack);
    FdModule::create(stack);
    facade.push_back(ReplConsensusModule::create(stack));
    CtAbcastModule::create(stack);  // requires "consensus" == the facade
    probes.push_back(std::make_unique<LatencyProbe>(collector, stack.host()));
    stack.listen<AbcastListener>(kAbcastService, probes.back().get(), nullptr);
    WorkloadConfig wc;
    wc.rate_per_second = load_per_stack;
    wc.poisson = true;
    wc.stop_after = duration;
    workloads.push_back(WorkloadModule::create(stack, wc));
    stack.start_all();
  }

  const TimePoint switch_at = duration / 2;
  world.at_node(switch_at, 0, [&]() {
    facade[0]->change_consensus("consensus.mr");
  });
  world.run_until(duration + 5 * kSecond);

  print_header("Consensus replacement (CT -> MR) under CT-ABcast load, n=" +
               std::to_string(n) + ", load=" +
               fmt_fixed(load_per_stack * static_cast<double>(n), 0) +
               " msg/s");
  print_row({"time[s]", "avg-latency[us]", "samples"});
  const TimeSeries& series = collector.series();
  for (std::size_t b = 0; b < series.bucket_count(); ++b) {
    const OnlineStats& stats = series.bucket(b);
    if (stats.count() == 0) continue;
    print_row({fmt_fixed(to_seconds(series.bucket_start(b)), 1),
               fmt_fixed(stats.mean(), 1), std::to_string(stats.count())});
  }
  const double before = collector.window(kSecond, switch_at).mean();
  const double after =
      collector.window(switch_at + 2 * kSecond, duration).mean();
  std::printf("\nsummary: before(CT)=%.1fus after(MR)=%.1fus\n", before, after);
  const StreamId abcast_stream =
      fnv1a64(std::string(kAbcastService) + "/stream");
  for (NodeId i = 0; i < n; ++i) {
    std::printf("stack %u: versions=%zu abcast-stream-version=%u (%s)\n", i,
                facade[i]->version_count(),
                facade[i]->stream_version(abcast_stream),
                facade[i]
                    ->protocol_of(facade[i]->stream_version(abcast_stream))
                    .c_str());
  }
  std::uint64_t delivered = 0;
  for (auto& p : probes) delivered += p->deliveries();
  std::uint64_t sent = 0;
  for (auto* w : workloads) sent += w->sent();
  std::printf("sent=%llu delivered=%llu (expected %llu)\n",
              static_cast<unsigned long long>(sent),
              static_cast<unsigned long long>(delivered),
              static_cast<unsigned long long>(sent * n));
}

}  // namespace
}  // namespace dpu::bench

int main() {
  using namespace dpu::bench;
  std::printf("Consensus-protocol replacement — extension E1 ([16])\n");
  run_consensus_switch(3, 200.0);
  if (full_mode()) run_consensus_switch(7, 100.0);
  return 0;
}
