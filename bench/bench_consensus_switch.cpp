// Extension E1 — replacement of the consensus protocol (the paper's
// announced future work [16]): an unmodified CT-ABcast drives load through
// the Repl-Consensus facade while the consensus service is switched from
// the Chandra-Toueg provider to the Mostéfaoui-Raynal provider.
//
// Runs as a scenario (src/scenario) with the kReplConsensus mechanism.
// Reported: the latency timeline around the switch, the switch window, the
// per-stack final protocol and the delivered/decided counts.
#include <cstdio>

#include "common/harness.hpp"
#include "scenario/runner.hpp"

namespace dpu::bench {
namespace {

void run_consensus_switch(std::size_t n, double load_per_stack) {
  using namespace dpu::scenario;

  const Duration duration = full_mode() ? 20 * kSecond : 12 * kSecond;
  ScenarioSpec spec;
  spec.name = "bench-consensus-switch";
  spec.n = n;
  spec.duration = duration;
  spec.drain = 5 * kSecond;
  spec.mechanism = Mechanism::kReplConsensus;
  spec.initial_protocol = "consensus.ct";
  spec.workload.rate_per_stack = load_per_stack;
  spec.updates = {{duration / 2, 0, "consensus.mr"}};

  RunOptions options;
  options.with_audit = false;  // pure latency run
  const ScenarioResult result = run_scenario(spec, /*seed=*/51, options);

  print_header("Consensus replacement (CT -> MR) under CT-ABcast load, n=" +
               std::to_string(n) + ", load=" +
               fmt_fixed(load_per_stack * static_cast<double>(n), 0) +
               " msg/s");
  print_row({"time[s]", "avg-latency[us]", "samples"});
  const TimeSeries& series = result.collector->series();
  for (std::size_t b = 0; b < series.bucket_count(); ++b) {
    const OnlineStats& stats = series.bucket(b);
    if (stats.count() == 0) continue;
    print_row({fmt_fixed(to_seconds(series.bucket_start(b)), 1),
               fmt_fixed(stats.mean(), 1), std::to_string(stats.count())});
  }

  const TimePoint switch_at = duration / 2;
  const double before = result.collector->window(kSecond, switch_at).mean();
  const double after =
      result.collector->window(switch_at + 2 * kSecond, duration).mean();
  std::printf("\nsummary: before(CT)=%.1fus after(MR)=%.1fus\n", before, after);
  if (!result.switch_windows.empty()) {
    std::printf("switch window: %.1f ms (requested t=%.3fs)\n",
                to_millis(result.max_switch_downtime()),
                to_seconds(result.switch_windows[0].first));
  }
  for (NodeId i = 0; i < n; ++i) {
    std::printf("stack %u: final consensus protocol = %s\n", i,
                result.final_protocol[i].c_str());
  }
  std::printf("sent=%llu delivered=%llu (expected %llu) decisions=%llu\n",
              static_cast<unsigned long long>(result.messages_sent),
              static_cast<unsigned long long>(result.deliveries),
              static_cast<unsigned long long>(result.messages_sent * n),
              static_cast<unsigned long long>(result.decisions_delivered));
}

}  // namespace
}  // namespace dpu::bench

int main() {
  using namespace dpu::bench;
  std::printf("Consensus-protocol replacement — extension E1 ([16])\n");
  run_consensus_switch(3, 200.0);
  if (full_mode()) run_consensus_switch(7, 100.0);
  return 0;
}
