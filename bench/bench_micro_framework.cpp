// Micro-benchmarks of the framework primitives (google-benchmark): the raw
// CPU costs of the codec, the service dispatch path, the event engine and
// the transport layers.  These numbers justify the calibration constants in
// DESIGN.md §8 and document what the composition model itself costs.
#include <benchmark/benchmark.h>

#include "net/rbcast.hpp"
#include "net/rp2p.hpp"
#include "net/udp_module.hpp"
#include "sim/sim_world.hpp"

namespace dpu {
namespace {

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

void BM_CodecEncodeSmallHeader(benchmark::State& state) {
  for (auto _ : state) {
    BufWriter w(32);
    w.put_u8(0);
    w.put_varint(12345);
    w.put_u32(7);
    w.put_varint(999999);
    benchmark::DoNotOptimize(w.take());
  }
}
BENCHMARK(BM_CodecEncodeSmallHeader);

void BM_CodecRoundTripPayload(benchmark::State& state) {
  const Bytes payload(static_cast<std::size_t>(state.range(0)), 0x42);
  for (auto _ : state) {
    BufWriter w(payload.size() + 16);
    w.put_varint(payload.size());
    w.put_blob(payload);
    Bytes wire = w.take();
    BufReader r(wire);
    benchmark::DoNotOptimize(r.get_varint());
    benchmark::DoNotOptimize(r.get_blob());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CodecRoundTripPayload)->Arg(64)->Arg(1024)->Arg(16384);

void BM_VarintEncode(benchmark::State& state) {
  std::uint64_t v = 0;
  for (auto _ : state) {
    BufWriter w(10);
    w.put_varint(v += 0x12345);
    benchmark::DoNotOptimize(w.span().data());
  }
}
BENCHMARK(BM_VarintEncode);

// ---------------------------------------------------------------------------
// Event engine
// ---------------------------------------------------------------------------

void BM_SimTimerScheduleAndFire(benchmark::State& state) {
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 1});
  HostEnv& host = world.stack(0).host();
  std::uint64_t fired = 0;
  for (auto _ : state) {
    host.set_timer(kMicrosecond, [&fired]() { ++fired; });
    world.run_for(2 * kMicrosecond);
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_SimTimerScheduleAndFire);

void BM_SimPacketRoundTrip(benchmark::State& state) {
  SimConfig config{.num_stacks = 2, .seed = 1};
  SimWorld world(config);
  std::uint64_t received = 0;
  world.stack(1).host().set_packet_handler(
      [&received](NodeId, const Payload&) { ++received; });
  const Bytes payload(64, 0x11);
  for (auto _ : state) {
    world.stack(0).host().send_packet(1, payload);
    world.run_for(100 * kMicrosecond);
  }
  benchmark::DoNotOptimize(received);
}
BENCHMARK(BM_SimPacketRoundTrip);

// ---------------------------------------------------------------------------
// Transport layers (full protocol work per message, CPU time)
// ---------------------------------------------------------------------------

void BM_Rp2pMessage(benchmark::State& state) {
  SimWorld world(SimConfig{.num_stacks = 2, .seed = 1});
  for (NodeId i = 0; i < 2; ++i) {
    UdpModule::create(world.stack(i));
    Rp2pModule::create(world.stack(i));
    world.stack(i).start_all();
  }
  std::uint64_t received = 0;
  auto* rp2p1 = dynamic_cast<Rp2pModule*>(world.stack(1).find_module("rp2p"));
  rp2p1->rp2p_bind_channel(
      1, [&received](NodeId, const Payload&) { ++received; });
  auto* rp2p0 = dynamic_cast<Rp2pModule*>(world.stack(0).find_module("rp2p"));
  const Bytes payload(64, 0x22);
  for (auto _ : state) {
    rp2p0->rp2p_send(1, 1, payload);
    world.run_for(kMillisecond);
  }
  benchmark::DoNotOptimize(received);
}
BENCHMARK(BM_Rp2pMessage);

void BM_RbcastFanout(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  SimWorld world(SimConfig{.num_stacks = n, .seed = 1});
  std::uint64_t received = 0;
  RbcastModule* rb0 = nullptr;
  for (NodeId i = 0; i < n; ++i) {
    UdpModule::create(world.stack(i));
    Rp2pModule::create(world.stack(i));
    auto* rb = RbcastModule::create(world.stack(i));
    if (i == 0) rb0 = rb;
    world.stack(i).start_all();
    rb->rbcast_bind_channel(
        1, [&received](NodeId, const Payload&) { ++received; });
  }
  const Bytes payload(64, 0x33);
  for (auto _ : state) {
    rb0->rbcast(1, payload);
    world.run_for(kMillisecond);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  benchmark::DoNotOptimize(received);
}
BENCHMARK(BM_RbcastFanout)->Arg(3)->Arg(7);

}  // namespace
}  // namespace dpu

BENCHMARK_MAIN();
