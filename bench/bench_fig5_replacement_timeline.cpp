// Figure 5 — average ABcast latency as a function of time, with one dynamic
// replacement of the ABcast protocol in the middle of the run.
//
// Reproduces the paper's §6.2 experiment: n stacks apply a constant load;
// mid-run one stack triggers changeABcast(CT -> CT), exercising every step
// of Algorithm 1 (unbind, create, bind, re-issue).  Expected shape (paper
// Fig. 5): a latency spike confined to roughly one second around the
// switch, then return to the pre-switch baseline; "the cost of switching
// between different protocols is negligible".
#include <cstdio>

#include "common/harness.hpp"

namespace dpu::bench {
namespace {

void run_timeline(std::size_t n, double load_per_stack) {
  ExperimentConfig config;
  config.n = n;
  config.seed = 42;
  config.load_per_stack = load_per_stack;
  config.duration = 20 * kSecond;
  config.mode = Mode::kRepl;
  config.switches = {{10 * kSecond, "abcast.ct"}};

  ExperimentResult result = run_experiment(config);

  print_header("Figure 5: latency vs time, n=" + std::to_string(n) +
               ", load=" + fmt_fixed(load_per_stack * n, 0) +
               " msg/s total, CT->CT replacement at t=10s");
  std::printf("replacement: requested t=%.3fs, completed on all stacks t=%.3fs "
              "(duration %.1f ms)\n",
              to_seconds(result.switch_windows[0].first),
              to_seconds(result.switch_windows[0].second),
              to_millis(result.switch_windows[0].second -
                        result.switch_windows[0].first));
  print_row({"time[s]", "avg-latency[us]", "samples"});
  const TimeSeries& series = result.collector->series();
  for (std::size_t b = 0; b < series.bucket_count(); ++b) {
    const OnlineStats& stats = series.bucket(b);
    if (stats.count() == 0) continue;
    print_row({fmt_fixed(to_seconds(series.bucket_start(b)), 1),
               fmt_fixed(stats.mean(), 1),
               std::to_string(stats.count())});
  }

  const auto [sw_start, sw_end] = result.switch_windows[0];
  const double before = result.mean_latency_us(2 * kSecond, sw_start);
  const double during =
      result.mean_latency_us(sw_start, sw_end + 200 * kMillisecond);
  const double after =
      result.mean_latency_us(sw_end + kSecond, config.duration);
  std::printf("\nsummary: before=%.1fus during=%.1fus (x%.2f) after=%.1fus\n",
              before, during, during / before, after);
  std::printf("reissued=%llu stale-discarded=%llu sent=%llu delivered=%llu "
              "(expected %llu)\n",
              static_cast<unsigned long long>(result.reissued),
              static_cast<unsigned long long>(result.stale_discarded),
              static_cast<unsigned long long>(result.messages_sent),
              static_cast<unsigned long long>(result.deliveries),
              static_cast<unsigned long long>(result.messages_sent * n));
}

}  // namespace
}  // namespace dpu::bench

int main() {
  using namespace dpu::bench;
  std::printf("Fig. 5 reproduction — Rutti/Wojciechowski/Schiper, IPDPS'06\n");
  // ~2/3 of the n=7 saturation throughput (see bench_fig6): high enough
  // that the perturbation is "clearly visible" (§6.2), low enough that the
  // system recovers quickly.
  run_timeline(7, 450.0);
  if (full_mode()) run_timeline(3, 1500.0);
  return 0;
}
