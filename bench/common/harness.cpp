#include "common/harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <future>
#include <thread>

#include "repl/repl_abcast.hpp"
#include "util/log.hpp"

namespace dpu::bench {

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kNoLayer: return "no-layer";
    case Mode::kRepl: return "repl";
    case Mode::kMaestro: return "maestro";
    case Mode::kGraceful: return "graceful";
  }
  return "?";
}

double ExperimentResult::switch_latency_us(Duration tail) const {
  OnlineStats stats;
  for (const auto& [from, to] : switch_windows) {
    stats.merge(collector->window(from, to + tail));
  }
  return stats.mean();
}

namespace {

/// Extracts [request, last-done] windows from the trace markers emitted by
/// the replacement modules.
std::vector<std::pair<TimePoint, TimePoint>> extract_switch_windows(
    const std::vector<TraceEvent>& events, std::size_t n) {
  std::vector<TimePoint> requests;
  std::vector<std::vector<TimePoint>> done_times;  // per request, per stack
  for (const TraceEvent& e : events) {
    if (e.kind != TraceKind::kCustom) continue;
    if (e.detail.rfind(ReplAbcastModule::kTraceChangeRequested, 0) == 0) {
      requests.push_back(e.time);
      done_times.emplace_back();
    } else if (e.detail.rfind(ReplAbcastModule::kTraceSwitchDone, 0) == 0 ||
               e.detail == MaestroSwitchModule::kTraceUnblocked ||
               e.detail == GracefulSwitchModule::kTraceActivated) {
      if (!done_times.empty()) done_times.back().push_back(e.time);
    } else if (e.detail == MaestroSwitchModule::kTraceBlocked ||
               e.detail == GracefulSwitchModule::kTraceDeactivated) {
      // Baseline runs have no explicit request marker; open a window at the
      // first per-switch event.
      if (done_times.empty() || done_times.back().size() >= n) {
        requests.push_back(e.time);
        done_times.emplace_back();
      }
    }
  }
  std::vector<std::pair<TimePoint, TimePoint>> windows;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    TimePoint end = requests[i];
    for (TimePoint t : done_times[i]) end = std::max(end, t);
    windows.emplace_back(requests[i], end);
  }
  return windows;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  StandardStackOptions options;
  options.with_replacement_layer = config.mode == Mode::kRepl;
  options.abcast_protocol = config.abcast_protocol;
  options.with_gm = false;  // the latency benches measure the bare channel

  ProtocolLibrary library = make_standard_library(options);
  TraceRecorder trace;

  SimConfig sim;
  sim.num_stacks = config.n;
  sim.seed = config.seed;
  sim.stack_cost.service_hop_cost = config.hop_cost;
  sim.stack_cost.module_create_cost = config.module_create_cost;
  SimWorld world(sim, &library, &trace);

  ExperimentResult result;
  result.collector = std::make_unique<LatencyCollector>(config.bucket_width);

  std::vector<StandardStack> stacks;
  std::vector<MaestroSwitchModule*> maestro(config.n, nullptr);
  std::vector<GracefulSwitchModule*> graceful(config.n, nullptr);
  std::vector<ReplAbcastModule*> repl(config.n, nullptr);
  std::vector<std::unique_ptr<LatencyProbe>> probes;
  std::vector<WorkloadModule*> workloads;

  for (NodeId i = 0; i < config.n; ++i) {
    Stack& stack = world.stack(i);
    if (config.mode == Mode::kMaestro) {
      // Maestro composes its own protocol layer above the substrate.
      UdpModule::create(stack);
      Rp2pModule::create(stack, kRp2pService, options.rp2p);
      RbcastModule::create(stack, kRbcastService, options.rbcast);
      FdModule::create(stack, kFdService, options.fd);
      MaestroSwitchModule::Config mc;
      mc.initial_protocol = config.abcast_protocol;
      maestro[i] = MaestroSwitchModule::create(stack, mc);
      stack.start_all();
    } else if (config.mode == Mode::kGraceful) {
      UdpModule::create(stack);
      Rp2pModule::create(stack, kRp2pService, options.rp2p);
      RbcastModule::create(stack, kRbcastService, options.rbcast);
      FdModule::create(stack, kFdService, options.fd);
      CtConsensusModule::create(stack);
      GracefulSwitchModule::Config gc;
      gc.initial_protocol = config.abcast_protocol;
      graceful[i] = GracefulSwitchModule::create(stack, gc);
      stack.start_all();
    } else {
      stacks.push_back(build_standard_stack(stack, options));
      repl[i] = stacks.back().repl;
    }
    probes.push_back(
        std::make_unique<LatencyProbe>(*result.collector, stack.host()));
    stack.listen<AbcastListener>(kAbcastService, probes.back().get(), nullptr);

    WorkloadConfig wc;
    wc.rate_per_second = config.load_per_stack;
    wc.message_size = config.message_size;
    wc.stop_after = config.duration;
    // Poisson arrivals: identical fixed-rate senders phase-lock with the
    // consensus instance cycle and settle into resonant steady states that
    // make before/after comparisons meaningless.
    wc.poisson = true;
    workloads.push_back(WorkloadModule::create(stack, wc));
    stack.start_all();
  }

  // Schedule switches.
  for (const SwitchEvent& sw : config.switches) {
    const NodeId initiator = 0;
    world.at_node(sw.at, initiator, [&, sw]() {
      switch (config.mode) {
        case Mode::kRepl:
          repl[initiator]->change_abcast(sw.protocol);
          break;
        case Mode::kMaestro:
          maestro[initiator]->change_stack(sw.protocol);
          break;
        case Mode::kGraceful:
          graceful[initiator]->change_adaptation(sw.protocol);
          break;
        case Mode::kNoLayer:
          break;  // nothing can switch
      }
    });
  }

  // Run: the workload stops at `duration`; the drain phase lets in-flight
  // messages finish.
  world.run_until(config.duration + 5 * kSecond);
  result.total_virtual_time = world.now();

  for (NodeId i = 0; i < config.n; ++i) {
    result.messages_sent += workloads[i]->sent();
    result.deliveries += probes[i]->deliveries();
    if (repl[i] != nullptr) {
      result.reissued += repl[i]->reissued_total();
      result.stale_discarded += repl[i]->stale_discarded();
    }
    if (maestro[i] != nullptr) {
      result.app_blocked_total += maestro[i]->total_blocked_time();
      result.calls_queued += maestro[i]->calls_queued_while_blocked();
    }
    if (graceful[i] != nullptr) {
      result.app_blocked_total += graceful[i]->total_queueing_window();
      result.calls_queued += graceful[i]->calls_queued_during_switch();
    }
  }
  result.trace = trace.events();
  result.switch_windows = extract_switch_windows(result.trace, config.n);
  return result;
}

std::vector<ExperimentResult> run_parallel(
    const std::vector<ExperimentConfig>& configs) {
  std::vector<ExperimentResult> results(configs.size());
  const std::size_t workers =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  for (std::size_t w = 0; w < std::min(workers, configs.size()); ++w) {
    pool.emplace_back([&]() {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= configs.size()) return;
        results[i] = run_experiment(configs[i]);
      }
    });
  }
  for (auto& t : pool) t.join();
  return results;
}

bool full_mode() {
  const char* v = std::getenv("DPU_BENCH_FULL");
  return v != nullptr && v[0] == '1';
}

void print_row(const std::vector<std::string>& cells, int width) {
  for (const auto& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
}

void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace dpu::bench
