// The bench harness is a thin adapter over the scenario engine
// (src/scenario): an ExperimentConfig maps onto a ScenarioSpec, the
// scenario runner executes it, and the result maps back.  The benches keep
// their historical vocabulary (Mode, ExperimentConfig) while world
// assembly, fault injection and switch-window extraction live in one place.
#include "common/harness.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "scenario/runner.hpp"

namespace dpu::bench {

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kNoLayer: return "no-layer";
    case Mode::kRepl: return "repl";
    case Mode::kMaestro: return "maestro";
    case Mode::kGraceful: return "graceful";
  }
  return "?";
}

double ExperimentResult::switch_latency_us(Duration tail) const {
  OnlineStats stats;
  for (const auto& [from, to] : switch_windows) {
    stats.merge(collector->window(from, to + tail));
  }
  return stats.mean();
}

namespace {

scenario::Mechanism to_mechanism(Mode mode) {
  switch (mode) {
    case Mode::kNoLayer: return scenario::Mechanism::kNone;
    case Mode::kRepl: return scenario::Mechanism::kRepl;
    case Mode::kMaestro: return scenario::Mechanism::kMaestro;
    case Mode::kGraceful: return scenario::Mechanism::kGraceful;
  }
  return scenario::Mechanism::kNone;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  scenario::ScenarioSpec spec;
  spec.name = std::string("bench-") + mode_name(config.mode);
  spec.n = config.n;
  spec.duration = config.duration;
  spec.drain = 5 * kSecond;  // in-flight messages settle after the workload
  spec.mechanism = to_mechanism(config.mode);
  spec.initial_protocol = config.abcast_protocol;
  spec.workload.rate_per_stack = config.load_per_stack;
  spec.workload.message_size = config.message_size;
  // Poisson arrivals: identical fixed-rate senders phase-lock with the
  // consensus instance cycle and settle into resonant steady states that
  // make before/after comparisons meaningless.
  spec.workload.poisson = true;
  spec.hop_cost = config.hop_cost;
  spec.module_create_cost = config.module_create_cost;
  if (config.mode != Mode::kNoLayer) {
    // The no-layer control series cannot switch; it historically ignored
    // any configured switch schedule.
    for (const SwitchEvent& sw : config.switches) {
      spec.updates.push_back({sw.at, /*initiator=*/0, sw.protocol});
    }
  }

  scenario::RunOptions options;
  options.bucket_width = config.bucket_width;
  // Latency benches run minutes of virtual time at full load; the audit
  // would retain every payload on every stack.
  options.with_audit = false;

  scenario::ScenarioResult run =
      scenario::run_scenario(spec, config.seed, options);

  ExperimentResult result;
  result.collector = std::move(run.collector);
  result.trace = std::move(run.trace);
  result.messages_sent = run.messages_sent;
  result.deliveries = run.deliveries;
  result.switch_windows = std::move(run.switch_windows);
  result.reissued = run.reissued;
  result.stale_discarded = run.stale_discarded;
  result.app_blocked_total = run.app_blocked_total;
  result.calls_queued = run.calls_queued;
  result.total_virtual_time = run.total_virtual_time;
  return result;
}

std::vector<ExperimentResult> run_parallel(
    const std::vector<ExperimentConfig>& configs) {
  std::vector<ExperimentResult> results(configs.size());
  const std::size_t workers =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  for (std::size_t w = 0; w < std::min(workers, configs.size()); ++w) {
    pool.emplace_back([&]() {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= configs.size()) return;
        results[i] = run_experiment(configs[i]);
      }
    });
  }
  for (auto& t : pool) t.join();
  return results;
}

bool full_mode() {
  const char* v = std::getenv("DPU_BENCH_FULL");
  return v != nullptr && v[0] == '1';
}

void print_row(const std::vector<std::string>& cells, int width) {
  for (const auto& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
}

void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace dpu::bench
