// Shared benchmark harness: composes a calibrated world (DESIGN.md §8 cost
// model), drives a constant workload, schedules protocol switches, and
// collects the paper's latency metric plus switch-window timings.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "app/probe.hpp"
#include "app/stack_builder.hpp"
#include "app/workload.hpp"
#include "core/trace.hpp"
#include "repl/baseline_graceful.hpp"
#include "repl/baseline_maestro.hpp"
#include "runtime/time.hpp"

namespace dpu::bench {

/// Which replacement machinery (if any) sits between the application and
/// the ABcast protocol.
enum class Mode {
  kNoLayer,   ///< protocol binds "abcast" directly (Fig. 6 control series)
  kRepl,      ///< the paper's Repl-ABcast (Algorithm 1)
  kMaestro,   ///< full-stack switch baseline
  kGraceful,  ///< barrier-switch baseline
};

[[nodiscard]] const char* mode_name(Mode mode);

struct SwitchEvent {
  TimePoint at = 0;
  std::string protocol;  // target (library name)
};

struct ExperimentConfig {
  std::size_t n = 3;
  std::uint64_t seed = 1;
  /// Messages per second issued by EACH stack ("constant load by all
  /// machines", §6.2).
  double load_per_stack = 100.0;
  std::size_t message_size = 64;
  Duration duration = 10 * kSecond;
  /// Samples sent before this offset are excluded from summary statistics
  /// (protocol warm-up).
  Duration warmup = kSecond;
  Mode mode = Mode::kRepl;
  std::string abcast_protocol = "abcast.ct";
  std::vector<SwitchEvent> switches;
  /// DESIGN.md §8: per-service-call CPU cost; the replacement layer's
  /// overhead emerges from the extra hops it adds.
  Duration hop_cost = 8 * kMicrosecond;
  /// CPU cost of instantiating one module (class loading + wiring in the
  /// paper's Java runtime); what spreads a switch's perturbation over a
  /// visible window.
  Duration module_create_cost = 20 * kMillisecond;
  Duration bucket_width = 100 * kMillisecond;
};

struct ExperimentResult {
  std::unique_ptr<LatencyCollector> collector;
  std::vector<TraceEvent> trace;
  std::uint64_t messages_sent = 0;
  std::uint64_t deliveries = 0;
  /// Per requested switch: [request time, time the last stack finished].
  std::vector<std::pair<TimePoint, TimePoint>> switch_windows;
  std::uint64_t reissued = 0;
  std::uint64_t stale_discarded = 0;
  Duration app_blocked_total = 0;   // maestro
  std::uint64_t calls_queued = 0;   // maestro/graceful
  Duration total_virtual_time = 0;

  /// Mean latency (µs) of messages sent in [from, to).
  [[nodiscard]] double mean_latency_us(TimePoint from, TimePoint to) const {
    return collector->window(from, to).mean();
  }

  /// Mean latency (µs) over the whole measured run (post-warmup).
  [[nodiscard]] double steady_latency_us(const ExperimentConfig& config) const {
    return mean_latency_us(config.warmup, config.duration);
  }

  /// Mean latency (µs) of messages sent inside switch windows (+tail).
  [[nodiscard]] double switch_latency_us(Duration tail = 500 * kMillisecond) const;
};

/// Runs one experiment on the deterministic simulator.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

/// Runs a batch of experiments, in parallel across hardware threads (each
/// simulation is single-threaded and independent).
[[nodiscard]] std::vector<ExperimentResult> run_parallel(
    const std::vector<ExperimentConfig>& configs);

// ---------------------------------------------------------------------------
// Output helpers
// ---------------------------------------------------------------------------

/// True when DPU_BENCH_FULL=1: run the full parameter sweeps (several
/// minutes); default is a quick profile suitable for CI.
[[nodiscard]] bool full_mode();

/// Prints an aligned table row; columns padded to `width`.
void print_row(const std::vector<std::string>& cells, int width = 14);

/// Prints a section header.
void print_header(const std::string& title);

}  // namespace dpu::bench
