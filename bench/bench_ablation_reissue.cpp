// Ablation A1 — what drives the cost of Algorithm 1's switch: the re-issue
// burst (lines 15-16) scales with the number of messages in flight at the
// moment the change message is delivered, which grows with load.
//
// Sweep the offered load and report, per switch: messages re-issued, stale
// deliveries discarded (line 18), the size of the latency spike and the
// time to return to baseline.
#include <cstdio>

#include "common/harness.hpp"

namespace dpu::bench {
namespace {

void run_sweep(std::size_t n, const std::vector<double>& loads) {
  const Duration duration = full_mode() ? 16 * kSecond : 10 * kSecond;
  std::vector<ExperimentConfig> configs;
  for (double load : loads) {
    ExperimentConfig c;
    c.n = n;
    c.seed = 41;
    c.load_per_stack = load;
    c.duration = duration;
    c.mode = Mode::kRepl;
    c.switches = {{duration / 2, "abcast.ct"}};
    configs.push_back(c);
  }
  auto results = run_parallel(configs);

  print_header("Reissue ablation, n=" + std::to_string(n) +
               " (one CT->CT switch at varying load)");
  print_row({"load[msg/s]", "reissued", "stale", "steady[us]", "during[us]",
             "spike[x]", "recovery[ms]"});
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const ExperimentConfig& cfg = configs[i];
    const ExperimentResult& r = results[i];
    const double steady = r.steady_latency_us(cfg);
    const double during = r.switch_latency_us();
    // Recovery time: first post-switch bucket whose mean returns to within
    // 1.5x of the steady latency.
    const auto [sw_start, sw_end] = r.switch_windows[0];
    Duration recovery = 0;
    const TimeSeries& series = r.collector->series();
    for (std::size_t b = 0; b < series.bucket_count(); ++b) {
      const TimePoint start = series.bucket_start(b);
      if (start < sw_start) continue;
      if (series.bucket(b).count() == 0) continue;
      if (series.bucket(b).mean() <= 1.5 * steady) {
        recovery = start + series.bucket_width() - sw_start;
        break;
      }
      recovery = start + series.bucket_width() - sw_start;
    }
    print_row({fmt_fixed(loads[i] * static_cast<double>(n), 0),
               std::to_string(r.reissued), std::to_string(r.stale_discarded),
               fmt_fixed(steady, 1), fmt_fixed(during, 1),
               fmt_fixed(during / steady, 2),
               fmt_fixed(to_millis(recovery), 0)});
  }
}

}  // namespace
}  // namespace dpu::bench

int main() {
  using namespace dpu::bench;
  std::printf("Ablation: Algorithm 1 re-issue burst vs offered load\n");
  run_sweep(3, full_mode()
                   ? std::vector<double>{50, 200, 500, 1000, 1500, 2000, 2500}
                   : std::vector<double>{50, 500, 1500, 2500});
  if (full_mode()) run_sweep(7, {25, 100, 200, 300, 400, 500});
  return 0;
}
