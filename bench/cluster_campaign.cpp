// cluster_campaign — runs scenario campaigns as real OS processes.
//
//   cluster_campaign                          # curated proc library, seed 1
//   cluster_campaign --list                   # print the proc scenario names
//   cluster_campaign --scenario proc-churn-50 --seeds 2
//   cluster_campaign --spec my_scenario.json --out results.json
//   cluster_campaign --engine sim --scenario proc-churn-50
//                                             # same spec, in-process engine
//
// Engine-proc specs run through the ClusterSupervisor: one dpu_node process
// per node over UDP sockets, crashes by SIGKILL, recoveries by respawn,
// partitions installed in each agent's socket receive path.  Specs on sim/rt
// (or forced there with --engine) run in-process exactly like
// scenario_campaign — the output document format is identical either way.
//
// Exit status: 0 when every run passes the property audits, 1 otherwise,
// 2 on usage/IO errors, 3 when interrupted (SIGINT/SIGTERM: children are
// killed and the partial document is still flushed, marked "interrupted").
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/supervisor.hpp"
#include "scenario/campaign.hpp"
#include "scenario/library.hpp"

namespace {

using namespace dpu;
using namespace dpu::scenario;

std::atomic<bool> g_cancel{false};

void on_signal(int /*sig*/) { g_cancel.store(true); }

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --list               print curated proc scenario names and exit\n"
      "  --scenario NAME      run one curated scenario (repeatable; both\n"
      "                       libraries are searched)\n"
      "  --spec FILE.json     run a spec loaded from JSON (repeatable)\n"
      "  --engine sim|rt|proc override the execution engine of every\n"
      "                       selected spec (default: each spec's own)\n"
      "  --seeds K            sweep seeds base..base+K-1 (default 1)\n"
      "  --seed-base B        first seed of the sweep (default 1)\n"
      "  --threads T          worker threads for in-process runs (proc\n"
      "                       runs always execute one at a time)\n"
      "  --node-binary PATH   dpu_node binary (default: next to this one)\n"
      "  --results-dir DIR    per-run scratch root (default:\n"
      "                       cluster-results)\n"
      "  --base-port P        first data-plane UDP port (default 21000)\n"
      "  --keep               keep per-node scratch files after each run\n"
      "  --out FILE           write the results JSON there (default stdout)\n"
      "  --compact            compact JSON instead of pretty-printed\n",
      argv0);
  return 2;
}

/// dpu_node lives next to this binary unless overridden.
std::string default_node_binary() {
  char buf[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (len <= 0) return "dpu_node";
  buf[len] = '\0';
  return (std::filesystem::path(buf).parent_path() / "dpu_node").string();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<ScenarioSpec> specs;
  std::vector<std::string> wanted;
  std::vector<std::string> spec_files;
  std::string out_path;
  std::uint64_t seed_count = 1;
  std::uint64_t seed_base = 1;
  std::size_t threads = 0;
  int indent = 2;
  std::optional<Engine> engine_override;
  cluster::SupervisorOptions sup;
  sup.node_binary = default_node_binary();

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--list") {
      for (const ScenarioSpec& spec : curated_proc_scenarios()) {
        std::printf("%-28s %s\n", spec.name.c_str(),
                    spec.description.c_str());
      }
      return 0;
    } else if (arg == "--scenario") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      wanted.emplace_back(v);
    } else if (arg == "--spec") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      spec_files.emplace_back(v);
    } else if (arg == "--engine") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      try {
        engine_override = engine_from_name(v);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (arg == "--seeds") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      seed_count = std::strtoull(v, nullptr, 10);
      if (seed_count == 0) return usage(argv[0]);
    } else if (arg == "--seed-base") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      seed_base = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      threads = std::strtoull(v, nullptr, 10);
    } else if (arg == "--node-binary") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      sup.node_binary = v;
    } else if (arg == "--results-dir") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      sup.results_dir = v;
    } else if (arg == "--base-port") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      sup.base_port = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--keep") {
      sup.keep_artifacts = true;
    } else if (arg == "--out") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      out_path = v;
    } else if (arg == "--compact") {
      indent = -1;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  for (const std::string& name : wanted) {
    std::optional<ScenarioSpec> spec = find_scenario(name);
    if (!spec.has_value()) {
      std::fprintf(stderr, "unknown scenario '%s' (try --list)\n",
                   name.c_str());
      return 2;
    }
    specs.push_back(std::move(*spec));
  }
  for (const std::string& path : spec_files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot read '%s'\n", path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      ScenarioSpec spec = ScenarioSpec::from_json_text(text.str());
      const std::vector<std::string> problems = spec.validate();
      if (!problems.empty()) {
        std::fprintf(stderr, "spec '%s' is invalid:\n", path.c_str());
        for (const std::string& p : problems) {
          std::fprintf(stderr, "  - %s\n", p.c_str());
        }
        return 2;
      }
      specs.push_back(std::move(spec));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "spec '%s': %s\n", path.c_str(), e.what());
      return 2;
    }
  }
  if (specs.empty()) specs = curated_proc_scenarios();
  if (engine_override.has_value()) {
    for (ScenarioSpec& spec : specs) spec.engine = *engine_override;
  }

  bool any_proc = false;
  for (const ScenarioSpec& spec : specs) {
    if (spec.engine == Engine::kProc) any_proc = true;
  }

  // Clean interrupt: children are killed (the supervisor polls the flag and
  // its teardown reaps them; PR_SET_PDEATHSIG backstops even a hard death)
  // and the partial document still reaches --out.
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  sup.cancel = &g_cancel;
  cluster::ClusterSupervisor supervisor(sup);

  CampaignOptions options;
  options.seeds.clear();
  for (std::uint64_t k = 0; k < seed_count; ++k) {
    options.seeds.push_back(seed_base + k);
  }
  // Proc runs share the data-plane port range and saturate the machine with
  // n processes each — they must not overlap.  In-process cells may still
  // sweep in parallel when no proc spec is selected.
  options.threads = any_proc ? 1 : threads;
  options.cancel = &g_cancel;
  options.run_fn = [&supervisor](const ScenarioSpec& spec,
                                 std::uint64_t seed) -> ScenarioResult {
    if (spec.engine == Engine::kProc) return supervisor.run(spec, seed);
    return run_scenario(spec, seed, RunOptions{});
  };

  const CampaignOutcome outcome = run_campaign(specs, options);
  const std::string text = outcome.document.dump(indent) + "\n";
  if (out_path.empty()) {
    std::fwrite(text.data(), 1, text.size(), stdout);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
      return 2;
    }
    out << text;
  }
  if (g_cancel.load()) {
    std::fprintf(stderr, "campaign: interrupted after %zu run(s)\n",
                 outcome.runs);
    return 3;
  }
  std::fprintf(stderr, "campaign: %zu run(s), %zu failed — %s\n",
               outcome.runs, outcome.failed_runs,
               outcome.ok ? "OK" : "AUDIT VIOLATIONS");
  return outcome.ok ? 0 : 1;
}
