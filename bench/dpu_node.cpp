// dpu_node — one protocol stack as one OS process (the cluster agent).
//
// Spawned by the campaign supervisor (cluster_campaign / ClusterSupervisor),
// one per node of a proc-engine scenario:
//
//   dpu_node --spec spec.json --hosts hosts.txt --node 3 \
//            --incarnation 0 --epoch-ns 123456789 --seed 1 \
//            --supervisor-port 40123 --results-dir /tmp/run
//
// Exit status: 0 after a clean harvest, 1 on setup failure, 2 when the
// supervisor vanished (no hello ack / prolonged silence).
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

#include "cluster/agent.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --spec FILE --hosts FILE --node N "
               "--supervisor-port P [--incarnation K] [--epoch-ns E] "
               "[--seed S] [--supervisor-host H] [--results-dir DIR]\n",
               argv0);
  return 1;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpu;
  using namespace dpu::cluster;

  std::string spec_path;
  std::string hosts_path;
  AgentConfig config;
  bool have_node = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    const char* v = next_value();
    if (v == nullptr) return usage(argv[0]);
    if (arg == "--spec") {
      spec_path = v;
    } else if (arg == "--hosts") {
      hosts_path = v;
    } else if (arg == "--node") {
      config.node = static_cast<NodeId>(std::strtoul(v, nullptr, 10));
      have_node = true;
    } else if (arg == "--incarnation") {
      config.incarnation =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--epoch-ns") {
      config.epoch_ns = std::strtoll(v, nullptr, 10);
    } else if (arg == "--seed") {
      config.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--supervisor-host") {
      config.supervisor_host = v;
    } else if (arg == "--supervisor-port") {
      config.supervisor_port =
          static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--results-dir") {
      config.results_dir = v;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (spec_path.empty() || hosts_path.empty() || !have_node ||
      config.supervisor_port == 0) {
    return usage(argv[0]);
  }

  try {
    config.spec =
        scenario::ScenarioSpec::from_json_text(read_file(spec_path));
    config.hosts = HostsFile::parse(read_file(hosts_path));
    return run_agent(config);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dpu_node n%u: %s\n", config.node, e.what());
    return 1;
  }
}
