// perf_gate — perf/regression gate comparing campaign and engine-bench
// output against the checked-in baselines under ci/.
//
//   perf_gate digest  --campaign RESULTS.json --out BASELINE.json
//       Distill a full campaign document into the compact per-(scenario,
//       seed) digest that is checked in as ci/campaign_baseline.json.
//
//   perf_gate campaign --baseline BASELINE.json --current RESULTS.json
//                      [--latency-tol 0.25] [--count-tol 0.25]
//       Fail (exit 1) when any run of the baseline is missing from the
//       current results, fails its audit, or drifts outside the tolerance
//       band on latency percentiles or packet/message counts.
//
//   perf_gate engine  --baseline BASELINE.json --current BENCH_engine.json
//                     [--count-tol 0.25] [--min-throughput-ratio 0.35]
//       Fail when deterministic engine counters drift outside the band or
//       wall-clock throughput falls below the minimum ratio of the baseline
//       (generous: CI machines are slower and noisier than the machine the
//       baseline was recorded on; see ci/README.md for refresh policy).
//
//   perf_gate curve   --baseline BASELINE.json --current BENCH_engine.json
//                     [--count-tol 0.25] [--min-throughput-ratio 0.35]
//                     [--min-batch-datagram-ratio 3.0] [--min-rt-speedup 1.5]
//                     [--min-shard-speedup 1.5]
//       Gate the --curve output (throughput vs node count, batched vs
//       unbatched, sim + rt/socket engines).  The default saturate
//       workload's unbatched/batched datagram ratio must clear the
//       --min-batch-datagram-ratio floor.  Sim points: deterministic
//       counters against the baseline band, wall-clock events/sec against
//       the minimum ratio, per-point datagram ratio one-sided against the
//       baseline's.  Rt points: the batched run must complete its fixed
//       work, and the batched/unbatched deliveries/sec speedup must clear
//       --min-rt-speedup at the largest node count (a generous floor
//       applies at smaller counts, where the socket path is not the
//       bottleneck).  Shard points: virtual counters must be EXACTLY equal
//       down the shard axis (shard count must never change results), the
//       serial point's counters sit in the baseline band, and the largest
//       (nodes, shards) point must clear --min-shard-speedup in events/sec
//       over its serial run — enforced only when the recorded
//       hardware_concurrency covers the shard count (a 1-core box cannot
//       speed up; the skip is loud).
//
// All comparisons are against *virtual-world* metrics except events_per_sec
// / packets_per_sec, which are wall-clock.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/json.hpp"

namespace {

using dpu::scenario::Json;

std::optional<Json> load_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return Json::parse(text.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_gate: cannot parse '%s': %s\n", path.c_str(),
                 e.what());
    return std::nullopt;
  }
}

/// Relative drift |current - base| / max(|base|, 1); the max() floor keeps
/// near-zero baselines (e.g. 0 retransmissions) from exploding the ratio.
double drift(double base, double current) {
  return std::fabs(current - base) / std::max(std::fabs(base), 1.0);
}

struct Gate {
  int failures = 0;

  void check_band(const std::string& where, const std::string& metric,
                  double base, double current, double tol) {
    const double d = drift(base, current);
    if (d > tol) {
      ++failures;
      std::fprintf(stderr,
                   "FAIL %s: %s drifted %.1f%% (baseline %.1f, current %.1f, "
                   "tolerance %.0f%%)\n",
                   where.c_str(), metric.c_str(), d * 100.0, base, current,
                   tol * 100.0);
    }
  }

  void fail(const std::string& where, const std::string& what) {
    ++failures;
    std::fprintf(stderr, "FAIL %s: %s\n", where.c_str(), what.c_str());
  }
};

// ---------------------------------------------------------------------------
// digest: full campaign document -> compact checked-in baseline
// ---------------------------------------------------------------------------

Json digest_campaign(const Json& doc) {
  Json runs = Json::array();
  for (const Json& scenario : doc.at("scenarios").items()) {
    const std::string name = scenario.at("name").as_string();
    for (const Json& run : scenario.at("runs").items()) {
      Json entry = Json::object();
      entry.set("scenario", name);
      entry.set("seed", run.at("seed").as_int());
      entry.set("ok", run.at("ok").as_bool());
      const Json& latency = run.at("latency");
      entry.set("samples", latency.at("samples").as_int());
      entry.set("p50_us", latency.at("p50_us").as_double());
      entry.set("p99_us", latency.at("p99_us").as_double());
      const Json& counts = run.at("counts");
      entry.set("sent", counts.at("sent").as_int());
      entry.set("delivered", counts.at("delivered").as_int());
      entry.set("packets_sent", counts.at("packets_sent").as_int());
      if (const Json* r = counts.find("retransmissions")) {
        entry.set("retransmissions", r->as_int());
      }
      // Per-update convergence latency (request -> last stack on the new
      // version), in plan order; virtual-time, so exactly reproducible.
      if (const Json* updates = run.find("updates")) {
        Json conv = Json::array();
        for (const Json& u : updates->items()) {
          conv.push(u.at("convergence_ms").as_double());
        }
        entry.set("convergence_ms", std::move(conv));
      }
      runs.push(std::move(entry));
    }
  }
  Json out = Json::object();
  out.set("kind", "campaign_baseline");
  out.set("runs", std::move(runs));
  return out;
}

/// Finds the result record for (scenario, seed) in a full campaign document.
const Json* find_run(const Json& doc, const std::string& scenario,
                     std::int64_t seed) {
  for (const Json& s : doc.at("scenarios").items()) {
    if (s.at("name").as_string() != scenario) continue;
    for (const Json& run : s.at("runs").items()) {
      if (run.at("seed").as_int() == seed) return &run;
    }
  }
  return nullptr;
}

int gate_campaign(const Json& baseline, const Json& current,
                  double latency_tol, double count_tol) {
  Gate gate;
  for (const Json& base : baseline.at("runs").items()) {
    const std::string scenario = base.at("scenario").as_string();
    const std::int64_t seed = base.at("seed").as_int();
    const std::string where =
        scenario + "/seed=" + std::to_string(seed);
    const Json* run = find_run(current, scenario, seed);
    if (run == nullptr) {
      gate.fail(where, "missing from current results");
      continue;
    }
    if (!run->at("ok").as_bool()) {
      gate.fail(where, "audit failed");
      continue;
    }
    const Json& latency = run->at("latency");
    const Json& counts = run->at("counts");
    gate.check_band(where, "p50_us", base.at("p50_us").as_double(),
                    latency.at("p50_us").as_double(), latency_tol);
    gate.check_band(where, "p99_us", base.at("p99_us").as_double(),
                    latency.at("p99_us").as_double(), latency_tol);
    gate.check_band(where, "sent",
                    static_cast<double>(base.at("sent").as_int()),
                    static_cast<double>(counts.at("sent").as_int()),
                    count_tol);
    gate.check_band(where, "delivered",
                    static_cast<double>(base.at("delivered").as_int()),
                    static_cast<double>(counts.at("delivered").as_int()),
                    count_tol);
    gate.check_band(
        where, "packets_sent",
        static_cast<double>(base.at("packets_sent").as_int()),
        static_cast<double>(counts.at("packets_sent").as_int()), count_tol);
    if (const Json* base_conv = base.find("convergence_ms")) {
      const Json* cur_updates = run->find("updates");
      if (cur_updates == nullptr ||
          cur_updates->size() != base_conv->size()) {
        gate.fail(where,
                  "update count changed (baseline " +
                      std::to_string(base_conv->size()) + ", current " +
                      std::to_string(cur_updates == nullptr
                                         ? 0
                                         : cur_updates->size()) +
                      ")");
      } else {
        for (std::size_t k = 0; k < base_conv->size(); ++k) {
          gate.check_band(
              where, "convergence_ms[" + std::to_string(k) + "]",
              base_conv->items()[k].as_double(),
              cur_updates->items()[k].at("convergence_ms").as_double(),
              latency_tol);
        }
      }
    }
    const Json* base_retrans = base.find("retransmissions");
    const Json* cur_retrans = counts.find("retransmissions");
    if (base_retrans != nullptr && cur_retrans != nullptr) {
      // One-sided: fewer retransmissions than the baseline is progress, not
      // a regression.
      const auto base_v = static_cast<double>(base_retrans->as_int());
      const auto cur_v = static_cast<double>(cur_retrans->as_int());
      if (cur_v > base_v && drift(base_v, cur_v) > count_tol) {
        gate.check_band(where, "retransmissions", base_v, cur_v, count_tol);
      }
    }
  }
  std::fprintf(stderr,
               "perf_gate campaign: %zu baseline run(s), %d failure(s)\n",
               baseline.at("runs").size(), gate.failures);
  return gate.failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// engine: BENCH_engine.json vs ci/bench_engine_baseline.json
// ---------------------------------------------------------------------------

int gate_engine(const Json& baseline, const Json& current, double count_tol,
                double min_ratio) {
  Gate gate;
  for (const auto& [name, base] : baseline.at("workloads").members()) {
    const Json* cur = current.at("workloads").find(name);
    if (cur == nullptr) {
      gate.fail(name, "workload missing from current results");
      continue;
    }
    for (const char* metric :
         {"events", "packets_sent", "deliveries"}) {
      gate.check_band(name, metric,
                      static_cast<double>(base.at(metric).as_int()),
                      static_cast<double>(cur->at(metric).as_int()),
                      count_tol);
    }
    // Retransmissions gate one-sided: the crash workload's whole point is
    // that this number stays small.
    const auto base_retrans =
        static_cast<double>(base.at("retransmissions").as_int());
    const auto cur_retrans =
        static_cast<double>(cur->at("retransmissions").as_int());
    if (cur_retrans > base_retrans &&
        drift(base_retrans, cur_retrans) > count_tol) {
      gate.check_band(name, "retransmissions", base_retrans, cur_retrans,
                      count_tol);
    }
    const double base_tput = base.at("events_per_sec").as_double();
    const double cur_tput = cur->at("events_per_sec").as_double();
    if (cur_tput < min_ratio * base_tput) {
      gate.fail(name, "events_per_sec " + std::to_string(cur_tput) +
                          " below " + std::to_string(min_ratio) +
                          "x baseline (" + std::to_string(base_tput) + ")");
    }
  }
  std::fprintf(stderr, "perf_gate engine: %d failure(s)\n", gate.failures);
  return gate.failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// curve: throughput-vs-node-count sweep (sim + rt/socket, batched vs
// unbatched) from bench_engine_throughput --curve.
// ---------------------------------------------------------------------------

/// Finds the curve point with the given node count in a point array.
const Json* find_point(const Json& points, std::int64_t nodes) {
  for (const Json& p : points.items()) {
    if (p.at("nodes").as_int() == nodes) return &p;
  }
  return nullptr;
}

/// Finds the shard-sweep point with the given (nodes, shards) key.
const Json* find_shard_point(const Json& points, std::int64_t nodes,
                             std::int64_t shards) {
  for (const Json& p : points.items()) {
    if (p.at("nodes").as_int() == nodes && p.at("shards").as_int() == shards) {
      return &p;
    }
  }
  return nullptr;
}

int gate_curve(const Json& baseline, const Json& current, double count_tol,
               double min_ratio, double min_dgram_ratio,
               double min_rt_speedup, double min_shard_speedup) {
  Gate gate;
  const Json* base_curve = baseline.find("curve");
  const Json* cur_curve = current.find("curve");
  if (base_curve == nullptr || cur_curve == nullptr) {
    gate.fail("curve", base_curve == nullptr
                           ? "baseline has no curve (regenerate with "
                             "bench_engine_throughput --curve)"
                           : "current results have no curve (run "
                             "bench_engine_throughput --curve)");
    return 1;
  }

  // Headline batching win: the default saturate workload must serialize at
  // least --min-batch-datagram-ratio fewer DATA datagrams than its
  // unbatched ablation.  Measured inside the current run (identical seeds),
  // so a slow CI machine cannot mask a real regression.
  {
    const auto batched_dgrams = static_cast<double>(
        current.at("workloads").at("saturate").at("data_datagrams").as_int());
    const auto unbatched_dgrams =
        static_cast<double>(current.at("workloads")
                                .at("saturate_unbatched")
                                .at("data_datagrams")
                                .as_int());
    const double ratio =
        batched_dgrams > 0.0 ? unbatched_dgrams / batched_dgrams : 0.0;
    if (ratio < min_dgram_ratio) {
      gate.fail("workloads/saturate",
                "batching datagram ratio " + std::to_string(ratio) +
                    " below floor " + std::to_string(min_dgram_ratio));
    } else {
      std::fprintf(stderr,
                   "OK   workloads/saturate: datagram ratio %.2fx "
                   "(floor %.2fx)\n",
                   ratio, min_dgram_ratio);
    }
  }

  // Sim points: virtual-world counters are deterministic per seed, so both
  // variants get the full tolerance-band treatment, plus the wall-clock
  // floor and a one-sided check that each point's batching ratio does not
  // fall below the baseline's.
  for (const Json& bp : base_curve->at("sim").items()) {
    const std::int64_t nodes = bp.at("nodes").as_int();
    const std::string where = "curve.sim/n=" + std::to_string(nodes);
    const Json* cp = find_point(cur_curve->at("sim"), nodes);
    if (cp == nullptr) {
      gate.fail(where, "node count missing from current curve");
      continue;
    }
    for (const char* variant : {"batched", "unbatched"}) {
      const Json& bv = bp.at(variant);
      const Json& cv = cp->at(variant);
      const std::string vwhere = where + "/" + variant;
      for (const char* metric : {"events", "packets_sent", "deliveries",
                                 "messages_sent", "data_datagrams"}) {
        gate.check_band(vwhere, metric,
                        static_cast<double>(bv.at(metric).as_int()),
                        static_cast<double>(cv.at(metric).as_int()),
                        count_tol);
      }
      const double base_tput = bv.at("events_per_sec").as_double();
      const double cur_tput = cv.at("events_per_sec").as_double();
      if (cur_tput < min_ratio * base_tput) {
        gate.fail(vwhere, "events_per_sec " + std::to_string(cur_tput) +
                              " below " + std::to_string(min_ratio) +
                              "x baseline (" + std::to_string(base_tput) +
                              ")");
      }
    }
    // Per-point batching ratio, one-sided against the baseline's own ratio
    // (the ratio grows with node count — relayed deliveries arrive in
    // bursts and re-batch — so a flat floor would be wrong at the small
    // end of the curve).
    auto dgram_ratio = [](const Json& point) {
      const auto b = static_cast<double>(
          point.at("batched").at("data_datagrams").as_int());
      const auto u = static_cast<double>(
          point.at("unbatched").at("data_datagrams").as_int());
      return b > 0.0 ? u / b : 0.0;
    };
    const double base_ratio = dgram_ratio(bp);
    const double cur_ratio = dgram_ratio(*cp);
    if (cur_ratio < (1.0 - count_tol) * base_ratio) {
      gate.fail(where, "batching datagram ratio " +
                           std::to_string(cur_ratio) + " fell below " +
                           std::to_string(1.0 - count_tol) + "x baseline (" +
                           std::to_string(base_ratio) + ")");
    }
  }

  // Shard points.  Three layers: (1) every counter that is a pure function
  // of the workload must be EXACTLY equal down the shard axis — the sharded
  // engine's byte-identity contract, checked inside the current run so it
  // can never be masked by baseline drift; (2) the serial point's counters
  // sit inside the baseline band like any other sim point; (3) the largest
  // sweep point must clear the events/sec speedup floor over its own serial
  // run — wall-clock, and only meaningful when the host has the cores.
  if (const Json* base_shards = base_curve->find("shards")) {
    const Json* cur_shards = cur_curve->find("shards");
    if (cur_shards == nullptr) {
      gate.fail("curve.shards", "current results have no shard sweep (run "
                                "bench_engine_throughput --curve)");
    } else {
      static constexpr const char* kExactMetrics[] = {
          "events", "packets_sent", "deliveries", "messages_sent",
          "data_datagrams", "retransmissions", "window_barriers",
          "merge_batches"};
      std::int64_t max_nodes = 0, max_shards = 0;
      for (const Json& bp : base_shards->items()) {
        const std::int64_t nodes = bp.at("nodes").as_int();
        const std::int64_t shards = bp.at("shards").as_int();
        if (nodes > max_nodes ||
            (nodes == max_nodes && shards > max_shards)) {
          max_nodes = nodes;
          max_shards = shards;
        }
        const std::string where = "curve.shards/n=" + std::to_string(nodes) +
                                  "/s=" + std::to_string(shards);
        const Json* cp = find_shard_point(*cur_shards, nodes, shards);
        if (cp == nullptr) {
          gate.fail(where, "point missing from current curve");
          continue;
        }
        const Json& cr = cp->at("result");
        if (shards == 1) {
          // The serial run anchors the band; sharded runs are then pinned
          // to it exactly, so one band per node count suffices.
          const Json& br = bp.at("result");
          for (const char* metric : {"events", "packets_sent", "deliveries"}) {
            gate.check_band(where, metric,
                            static_cast<double>(br.at(metric).as_int()),
                            static_cast<double>(cr.at(metric).as_int()),
                            count_tol);
          }
        } else {
          const Json* serial = find_shard_point(*cur_shards, nodes, 1);
          if (serial == nullptr) {
            gate.fail(where, "serial (shards=1) point missing from current "
                             "curve");
            continue;
          }
          const Json& sr = serial->at("result");
          for (const char* metric : kExactMetrics) {
            const std::int64_t sv = sr.at(metric).as_int();
            const std::int64_t cv = cr.at(metric).as_int();
            if (sv != cv) {
              gate.fail(where, std::string(metric) + " diverged from the "
                                   "serial run (" + std::to_string(sv) +
                                   " vs " + std::to_string(cv) +
                                   ") — shard count must never change "
                                   "results");
            }
          }
        }
      }
      // Speedup floor at the largest sweep point, hardware-conditional.
      const Json* top = find_shard_point(*cur_shards, max_nodes, max_shards);
      const Json* top_serial = find_shard_point(*cur_shards, max_nodes, 1);
      if (max_shards > 1 && top != nullptr && top_serial != nullptr) {
        std::int64_t cores = 0;
        if (const Json* bench = current.find("bench")) {
          if (const Json* hc = bench->find("hardware_concurrency")) {
            cores = hc->as_int();
          }
        }
        const std::string where = "curve.shards/n=" +
                                  std::to_string(max_nodes) + "/s=" +
                                  std::to_string(max_shards);
        const double serial_tput =
            top_serial->at("result").at("events_per_sec").as_double();
        const double sharded_tput =
            top->at("result").at("events_per_sec").as_double();
        const double speedup =
            serial_tput > 0.0 ? sharded_tput / serial_tput : 0.0;
        if (cores < max_shards) {
          std::fprintf(stderr,
                       "SKIP %s: shard speedup floor needs %lld cores, host "
                       "recorded %lld (measured %.2fx, not enforced)\n",
                       where.c_str(),
                       static_cast<long long>(max_shards),
                       static_cast<long long>(cores), speedup);
        } else if (speedup < min_shard_speedup) {
          gate.fail(where, "shard speedup " + std::to_string(speedup) +
                               "x below floor " +
                               std::to_string(min_shard_speedup) + "x");
        } else {
          std::fprintf(stderr, "OK   %s: shard speedup %.2fx (floor %.2fx)\n",
                       where.c_str(), speedup, min_shard_speedup);
        }
      }
    }
  }

  // Rt points: wall-clock over real sockets, so nothing is compared against
  // the (machine-dependent) baseline numbers; the gate is internal to the
  // current run.  Baseline only fixes WHICH node counts must be present.
  std::int64_t largest = 0;
  for (const Json& bp : base_curve->at("rt").items()) {
    largest = std::max(largest, bp.at("nodes").as_int());
  }
  for (const Json& bp : base_curve->at("rt").items()) {
    const std::int64_t nodes = bp.at("nodes").as_int();
    const std::string where = "curve.rt/n=" + std::to_string(nodes);
    const Json* cp = find_point(cur_curve->at("rt"), nodes);
    if (cp == nullptr) {
      gate.fail(where, "node count missing from current curve");
      continue;
    }
    const Json& batched = cp->at("batched");
    const Json& unbatched = cp->at("unbatched");
    if (!batched.at("complete").as_bool()) {
      gate.fail(where, "batched run hit the wall-clock cap before "
                       "delivering its fixed work");
    }
    const double b = batched.at("deliveries_per_sec").as_double();
    const double u = unbatched.at("deliveries_per_sec").as_double();
    const double speedup = u > 0.0 ? b / u : 0.0;
    // The headline requirement applies at the largest node count, where
    // per-datagram overhead dominates; smaller points get a generous floor
    // (batching must never make the socket path slower than ~noise).
    const double floor =
        nodes == largest ? min_rt_speedup : std::min(0.8, min_rt_speedup);
    if (speedup < floor) {
      gate.fail(where, "batched/unbatched speedup " +
                           std::to_string(speedup) + " below " +
                           std::to_string(floor));
    } else {
      std::fprintf(stderr, "OK   %s: speedup %.2fx (floor %.2fx)\n",
                   where.c_str(), speedup, floor);
    }
  }
  std::fprintf(stderr, "perf_gate curve: %d failure(s)\n", gate.failures);
  return gate.failures == 0 ? 0 : 1;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage:\n"
      "  %s digest   --campaign RESULTS.json --out BASELINE.json\n"
      "  %s campaign --baseline BASELINE.json --current RESULTS.json\n"
      "              [--latency-tol F] [--count-tol F]\n"
      "  %s engine   --baseline BASELINE.json --current BENCH.json\n"
      "              [--count-tol F] [--min-throughput-ratio F]\n"
      "  %s curve    --baseline BASELINE.json --current BENCH.json\n"
      "              [--count-tol F] [--min-throughput-ratio F]\n"
      "              [--min-batch-datagram-ratio F] [--min-rt-speedup F]\n"
      "              [--min-shard-speedup F]\n",
      argv0, argv0, argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string mode = argv[1];
  std::string baseline_path, current_path, campaign_path, out_path;
  double latency_tol = 0.25;
  double count_tol = 0.25;
  double min_ratio = 0.35;
  double min_dgram_ratio = 3.0;
  double min_rt_speedup = 1.5;
  double min_shard_speedup = 1.5;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--baseline" && (v = next_value())) {
      baseline_path = v;
    } else if (arg == "--current" && (v = next_value())) {
      current_path = v;
    } else if (arg == "--campaign" && (v = next_value())) {
      campaign_path = v;
    } else if (arg == "--out" && (v = next_value())) {
      out_path = v;
    } else if (arg == "--latency-tol" && (v = next_value())) {
      latency_tol = std::atof(v);
    } else if (arg == "--count-tol" && (v = next_value())) {
      count_tol = std::atof(v);
    } else if (arg == "--min-throughput-ratio" && (v = next_value())) {
      min_ratio = std::atof(v);
    } else if (arg == "--min-batch-datagram-ratio" && (v = next_value())) {
      min_dgram_ratio = std::atof(v);
    } else if (arg == "--min-rt-speedup" && (v = next_value())) {
      min_rt_speedup = std::atof(v);
    } else if (arg == "--min-shard-speedup" && (v = next_value())) {
      min_shard_speedup = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  try {
    if (mode == "digest") {
      if (campaign_path.empty() || out_path.empty()) return usage(argv[0]);
      std::optional<Json> doc = load_json(campaign_path);
      if (!doc) {
        std::fprintf(stderr, "cannot read '%s'\n", campaign_path.c_str());
        return 2;
      }
      const Json digest = digest_campaign(*doc);
      std::ofstream out(out_path);
      if (!out) {
        std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
        return 2;
      }
      out << digest.dump(2) << "\n";
      std::fprintf(stderr, "perf_gate digest: %zu run(s) -> %s\n",
                   digest.at("runs").size(), out_path.c_str());
      return 0;
    }
    if (mode == "campaign" || mode == "engine" || mode == "curve") {
      if (baseline_path.empty() || current_path.empty()) return usage(argv[0]);
      std::optional<Json> baseline = load_json(baseline_path);
      std::optional<Json> current = load_json(current_path);
      if (!baseline || !current) {
        std::fprintf(stderr, "cannot read baseline/current file\n");
        return 2;
      }
      if (mode == "campaign") {
        return gate_campaign(*baseline, *current, latency_tol, count_tol);
      }
      if (mode == "engine") {
        return gate_engine(*baseline, *current, count_tol, min_ratio);
      }
      return gate_curve(*baseline, *current, count_tol, min_ratio,
                        min_dgram_ratio, min_rt_speedup, min_shard_speedup);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_gate: %s\n", e.what());
    return 2;
  }
  return usage(argv[0]);
}
