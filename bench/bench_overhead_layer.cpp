// §6.3 headline number — the cost of the replacement layer ("approximately
// 5%") — measured two ways:
//
//  * micro (google-benchmark): the raw cost of one service call with and
//    without the Repl indirection, plus the wrapper encode/decode — real
//    CPU cycles, independent of the simulation's cost model;
//  * macro: steady-state ABcast latency with and without the layer at the
//    paper's operating point (n = 3/7, moderate load), from the calibrated
//    simulator.
#include <benchmark/benchmark.h>

#include "common/harness.hpp"
#include "repl/repl_abcast.hpp"
#include "sim/sim_world.hpp"

namespace dpu::bench {
namespace {

// ---------------------------------------------------------------------------
// Micro: service-call indirection
// ---------------------------------------------------------------------------

struct CountingApi {
  virtual ~CountingApi() = default;
  virtual void poke(std::uint64_t v) = 0;
};

class CountingModule final : public Module, public CountingApi {
 public:
  using Module::Module;
  void poke(std::uint64_t v) override { sum += v; }
  std::uint64_t sum = 0;
};

/// Forwarding module: the structural shape of the Repl indirection (one
/// extra bound service hop on the call path).
class ForwardingModule final : public Module, public CountingApi {
 public:
  ForwardingModule(Stack& stack, std::string name)
      : Module(stack, std::move(name)),
        inner_(stack.require<CountingApi>("counting.inner")) {}
  void poke(std::uint64_t v) override {
    inner_.call([v](CountingApi& api) { api.poke(v); });
  }

 private:
  ServiceRef<CountingApi> inner_;
};

void BM_ServiceCallDirect(benchmark::State& state) {
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 1});
  Stack& stack = world.stack(0);
  auto* mod = stack.emplace_module<CountingModule>(stack, "counting");
  stack.bind<CountingApi>("counting", mod, mod);
  auto ref = stack.require<CountingApi>("counting");
  std::uint64_t i = 0;
  for (auto _ : state) {
    ref.call([v = ++i](CountingApi& api) { api.poke(v); });
  }
  benchmark::DoNotOptimize(mod->sum);
}
BENCHMARK(BM_ServiceCallDirect);

void BM_ServiceCallThroughIndirection(benchmark::State& state) {
  SimWorld world(SimConfig{.num_stacks = 1, .seed = 1});
  Stack& stack = world.stack(0);
  auto* inner = stack.emplace_module<CountingModule>(stack, "counting.inner");
  stack.bind<CountingApi>("counting.inner", inner, inner);
  auto* fwd = stack.emplace_module<ForwardingModule>(stack, "counting");
  stack.bind<CountingApi>("counting", fwd, fwd);
  auto ref = stack.require<CountingApi>("counting");
  std::uint64_t i = 0;
  for (auto _ : state) {
    ref.call([v = ++i](CountingApi& api) { api.poke(v); });
  }
  benchmark::DoNotOptimize(inner->sum);
}
BENCHMARK(BM_ServiceCallThroughIndirection);

void BM_ReplWrapperEncodeDecode(benchmark::State& state) {
  const Bytes payload(64, 0x5A);
  const MsgId id{3, 123456};
  for (auto _ : state) {
    BufWriter w(payload.size() + 24);
    w.put_u8(0);
    w.put_varint(7);
    id.encode(w);
    w.put_blob(payload);
    Bytes wire = w.take();
    BufReader r(wire);
    benchmark::DoNotOptimize(r.get_u8());
    benchmark::DoNotOptimize(r.get_varint());
    benchmark::DoNotOptimize(MsgId::decode(r));
    benchmark::DoNotOptimize(r.get_blob());
  }
}
BENCHMARK(BM_ReplWrapperEncodeDecode);

// ---------------------------------------------------------------------------
// Macro: end-to-end latency overhead at the paper's operating point
// ---------------------------------------------------------------------------

void macro_overhead() {
  print_header(
      "Macro: replacement-layer latency overhead (paper <<approx 5%>>)");
  print_row({"n", "load[msg/s]", "no-layer[us]", "with-layer[us]",
             "overhead[%]"});
  struct Point {
    std::size_t n;
    double load;
  };
  for (const Point p : {Point{3, 300.0}, Point{7, 150.0}}) {
    ExperimentConfig base;
    base.n = p.n;
    base.seed = 11;
    base.load_per_stack = p.load;
    base.duration = full_mode() ? 20 * kSecond : 10 * kSecond;
    ExperimentConfig no_layer = base;
    no_layer.mode = Mode::kNoLayer;
    ExperimentConfig with_layer = base;
    with_layer.mode = Mode::kRepl;
    auto results = run_parallel({no_layer, with_layer});
    const double off = results[0].steady_latency_us(base);
    const double on = results[1].steady_latency_us(base);
    print_row({std::to_string(p.n), fmt_fixed(p.load * p.n, 0),
               fmt_fixed(off, 1), fmt_fixed(on, 1),
               fmt_fixed(100.0 * (on - off) / off, 1)});
  }
}

}  // namespace
}  // namespace dpu::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dpu::bench::macro_overhead();
  return 0;
}
