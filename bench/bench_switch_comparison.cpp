// §5.3 / §4.2 comparison, turned from prose into numbers: the paper's
// Repl-ABcast versus the Maestro-style full-stack switch and the
// Graceful-Adaptation-style barrier switch.
//
// Claims measured:
//  * "the application on top of the stack is never blocked, which is not
//    the case in the Maestro solution" — app-blocked/queueing time;
//  * "it does not require additional mechanisms such as barrier
//    synchronization" — switch duration (request -> all stacks done);
//  * latency disturbance for messages sent during the switch window.
#include <cstdio>

#include "common/harness.hpp"

namespace dpu::bench {
namespace {

void compare(std::size_t n, double load_per_stack) {
  const Duration duration = full_mode() ? 16 * kSecond : 10 * kSecond;
  std::vector<ExperimentConfig> configs;
  for (Mode mode : {Mode::kRepl, Mode::kMaestro, Mode::kGraceful}) {
    ExperimentConfig c;
    c.n = n;
    c.seed = 21;
    c.load_per_stack = load_per_stack;
    c.duration = duration;
    c.mode = mode;
    c.switches = {{duration / 2, "abcast.ct"}};
    configs.push_back(c);
  }
  auto results = run_parallel(configs);

  print_header("Switch mechanism comparison, n=" + std::to_string(n) +
               ", load=" + fmt_fixed(load_per_stack * n, 0) +
               " msg/s, one CT->CT switch");
  print_row({"mechanism", "steady[us]", "during[us]", "spike[x]",
             "switch[ms]", "blocked[ms]", "queued", "reissued"});
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const ExperimentResult& r = results[i];
    const double steady = r.steady_latency_us(configs[i]);
    const double during = r.switch_latency_us();
    Duration switch_len = 0;
    for (auto& [from, to] : r.switch_windows) {
      switch_len = std::max(switch_len, to - from);
    }
    print_row({mode_name(configs[i].mode), fmt_fixed(steady, 1),
               fmt_fixed(during, 1), fmt_fixed(during / steady, 2),
               fmt_fixed(to_millis(switch_len), 2),
               fmt_fixed(to_millis(r.app_blocked_total), 2),
               std::to_string(r.calls_queued), std::to_string(r.reissued)});
  }
}

}  // namespace
}  // namespace dpu::bench

int main() {
  using namespace dpu::bench;
  std::printf("Switch comparison: Repl-ABcast vs Maestro vs Graceful "
              "(paper sections 4.2 and 5.3)\n");
  compare(3, 500.0);
  compare(7, 300.0);
  return 0;
}
